"""Lint CLI: sweep schedule templates and the model zoo with the analyzer.

Usage::

    python -m repro.analysis                       # templates + default zoo
    python -m repro.analysis --templates 8         # more schedules per space
    python -m repro.analysis --models resnet50 bert
    python -m repro.analysis --spec examples/deployment_spec.json
    python -m repro.analysis --fixtures            # seeded-bad kernels

Exits non-zero iff any analyzed kernel has an error-severity finding; CI
runs the template/zoo sweep expecting success and the ``--fixtures`` sweep
expecting failure (the seeded bugs must be detected).

Models are linted at reduced spatial scale (the kernels and templates are
identical to full scale, the loop extents are just smaller), keeping the
sweep inside interactive budgets.
"""
from __future__ import annotations

import argparse
import json
import sys

from .analyzer import analyze_module
from .report import AnalysisReport

#: awkward problem sizes: not multiples of any block tile, so every
#: predicated tail path of the templates is exercised
TEMPLATE_SIZES = [(96, 72, 136), (33, 65, 17)]

#: reduced-scale zoo builders; same operators and templates as full scale
_ZOO = {
    'resnet50': lambda: _models().resnet50(image_size=32),
    'mobilenet_v2': lambda: _models().mobilenet_v2(image_size=32),
    'inception_v3': lambda: _models().inception_v3(image_size=75),
    'bert': lambda: _models().bert_base(seq_length=8, hidden=16, layers=1,
                                        heads=2, vocab_size=50),
    'gpt2': lambda: _models().gpt2(seq_length=8, hidden=16, layers=1,
                                   heads=2, vocab_size=50),
}


def _models():
    from .. import models
    return models


def _space_sample(count: int):
    """Evenly strided sample of the matmul space, plus split-k and
    single-buffer variants so every template path is covered."""
    from ..core.space import matmul_schedule_space
    sample = []
    for kwargs in ({}, {'double_buffer': False}, {'split_k': 2}):
        space = matmul_schedule_space(**kwargs)
        stride = max(1, len(space) // max(1, count))
        sample.extend(space[::stride][:count])
    return sample


def lint_templates(count: int, report: AnalysisReport, verbose: bool):
    from ..sched.matmul_template import build_matmul_module
    scheds = _space_sample(count)
    built = 0
    for m, n, k in TEMPLATE_SIZES:
        for batch in (1, 3):
            for sched in scheds:
                if batch > 1 and sched.split_k > 1:
                    continue    # batch and split-k both claim blockIdx.z
                module = build_matmul_module(m, n, k, sched,
                                             name=f'mm{m}x{n}x{k}b{batch}',
                                             batch=batch)
                report.extend(analyze_module(module))
                built += len(module)
    # the reduction template across its block sizes
    from ..core.schedule import ReduceSchedule
    from ..ir.compute import compute, reduce, tensor_input
    from ..ir.task import Task
    from ..sched.reduce_template import build_reduce_module
    a = tensor_input('A', 'float32', [5, 33])
    task = Task('rsum', [a],
                compute('B', [5], lambda i: reduce([33], lambda kk: a[i, kk])))
    for block in (32, 64, 128):
        module = build_reduce_module(task, ReduceSchedule(block_size=block))
        report.extend(analyze_module(module))
        built += len(module)
    if verbose:
        print(f'templates: {built} kernels from {len(scheds)} schedules '
              f'x {len(TEMPLATE_SIZES)} sizes (+reduce)')


def lint_model(name: str, report: AnalysisReport, verbose: bool):
    from ..runtime import HidetExecutor, ScheduleCache
    graph = _ZOO[name]()
    # the CLI collects full reports itself, so the executor's own raising
    # gate is off for this compile
    executor = HidetExecutor(cache=ScheduleCache(), build_ir=True,
                             check_ir=False)
    compiled = executor.compile(graph)
    kernels = 0
    seen = set()
    for op in compiled.ops:
        if op.module is None or id(op.module) in seen:
            continue
        seen.add(id(op.module))
        report.extend(analyze_module(op.module))
        kernels += len(op.module)
    if verbose:
        print(f'{name}: {kernels} lowered kernels analyzed')


def lint_fixtures(report: AnalysisReport, verbose: bool):
    from . import fixtures
    from ..core.space import matmul_schedule_space
    modules = [
        fixtures.build_oob_store_kernel(),
        fixtures.build_hole_mapping_kernel(),
        fixtures.build_duplicate_writer_kernel(),
        fixtures.build_missing_barrier_kernel(),
    ]
    # a real template made racy: strip the main loop's trailing barrier
    from ..sched.matmul_template import build_matmul_module
    sched = next(s for s in matmul_schedule_space() if s.double_buffer)
    modules.append(fixtures.strip_loop_barrier(
        build_matmul_module(64, 64, 64, sched, name='desynced')))
    for module in modules:
        sub = analyze_module(module)
        if sub.ok and verbose:
            print(f'warning: fixture {module.name} analyzed clean')
        report.extend(sub)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog='python -m repro.analysis',
        description='static analysis lint over schedule templates and the '
                    'model zoo')
    parser.add_argument('--templates', type=int, default=4, metavar='N',
                        help='schedules sampled per space variant '
                             '(default 4; 0 skips the template sweep)')
    parser.add_argument('--models', nargs='*', default=None,
                        metavar='NAME', choices=sorted(_ZOO),
                        help=f'zoo models to lint (default: resnet50 bert '
                             f'gpt2; choices: {", ".join(sorted(_ZOO))})')
    parser.add_argument('--spec', default=None, metavar='PATH',
                        help='deployment spec JSON; lints the models it '
                             'names instead of --models')
    parser.add_argument('--fixtures', action='store_true',
                        help='analyze the seeded-bad fixture kernels '
                             '(expected to FAIL: exits non-zero)')
    parser.add_argument('-v', '--verbose', action='store_true')
    args = parser.parse_args(argv)

    report = AnalysisReport()
    if args.fixtures:
        lint_fixtures(report, args.verbose)
    else:
        if args.templates > 0:
            lint_templates(args.templates, report, args.verbose)
        if args.spec:
            with open(args.spec) as fh:
                spec = json.load(fh)
            names = [m['name'] for m in spec.get('models', [])]
        elif args.models is not None:
            names = args.models
        else:
            names = ['resnet50', 'bert', 'gpt2']
        for name in names:
            if name not in _ZOO:
                print(f'warning: unknown model {name!r}, skipping')
                continue
            lint_model(name, report, args.verbose)

    print(report.summary())
    return 0 if report.ok else 1


if __name__ == '__main__':
    sys.exit(main())
