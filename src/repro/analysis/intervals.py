"""Integer interval arithmetic and structural expression keys.

The interval domain is the workhorse of the bounds checker and the race
detector: every index expression is abstracted to an inclusive integer
range ``[lo, hi]`` where ``None`` means unbounded on that side.  Division
and modulo follow *Python* semantics (floor division, nonnegative modulo
for positive divisors) because that is what ``ir.passes.simplify`` and the
reference interpreter implement.

:func:`expr_key` gives a hashable structural fingerprint of an ``ir.expr``
tree so guard facts learned about an expression (``gi < m`` caps the range
of ``gi``) can be recalled at the access site even though the two ``gi``
trees are distinct Python objects.
"""
from __future__ import annotations

from typing import Optional

from ..ir.expr import (BinaryExpr, BlockIndex, Call, Cast, Constant, Expr,
                       IfThenElse, TensorElement, ThreadIndex, UnaryExpr, Var)


def _add(a: Optional[int], b: Optional[int]) -> Optional[int]:
    return None if a is None or b is None else a + b


class Interval:
    """Inclusive integer range ``[lo, hi]``; ``None`` = unbounded."""

    __slots__ = ('lo', 'hi')

    def __init__(self, lo: Optional[int] = None, hi: Optional[int] = None):
        self.lo = lo
        self.hi = hi

    @staticmethod
    def point(value: int) -> 'Interval':
        return Interval(value, value)

    @staticmethod
    def unknown() -> 'Interval':
        return Interval(None, None)

    @property
    def known(self) -> bool:
        return self.lo is not None and self.hi is not None

    @property
    def is_point(self) -> bool:
        return self.known and self.lo == self.hi

    def within(self, lo: int, hi: int) -> bool:
        """Provably contained in the inclusive range ``[lo, hi]``?"""
        return self.known and self.lo >= lo and self.hi <= hi

    def __repr__(self):
        lo = '-inf' if self.lo is None else self.lo
        hi = '+inf' if self.hi is None else self.hi
        return f'[{lo}, {hi}]'

    def __eq__(self, other):
        return (isinstance(other, Interval)
                and self.lo == other.lo and self.hi == other.hi)

    def __hash__(self):
        return hash((self.lo, self.hi))

    # -- lattice ----------------------------------------------------------
    def intersect(self, other: 'Interval') -> 'Interval':
        lo = other.lo if self.lo is None else (
            self.lo if other.lo is None else max(self.lo, other.lo))
        hi = other.hi if self.hi is None else (
            self.hi if other.hi is None else min(self.hi, other.hi))
        return Interval(lo, hi)

    def union(self, other: 'Interval') -> 'Interval':
        lo = None if self.lo is None or other.lo is None else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return Interval(lo, hi)

    # -- arithmetic -------------------------------------------------------
    def __add__(self, other: 'Interval') -> 'Interval':
        return Interval(_add(self.lo, other.lo), _add(self.hi, other.hi))

    def __sub__(self, other: 'Interval') -> 'Interval':
        return Interval(
            None if self.lo is None or other.hi is None else self.lo - other.hi,
            None if self.hi is None or other.lo is None else self.hi - other.lo)

    def __neg__(self) -> 'Interval':
        return Interval(None if self.hi is None else -self.hi,
                        None if self.lo is None else -self.lo)

    def __mul__(self, other: 'Interval') -> 'Interval':
        if not (self.known and other.known):
            # one-sided results are possible but never needed by the
            # templates; stay simple and sound
            return Interval.unknown()
        corners = [self.lo * other.lo, self.lo * other.hi,
                   self.hi * other.lo, self.hi * other.hi]
        return Interval(min(corners), max(corners))

    def __floordiv__(self, other: 'Interval') -> 'Interval':
        # only positive divisors: every divisor the templates produce is a
        # positive extent or stride
        if not other.known or other.lo <= 0:
            return Interval.unknown()
        if not self.known:
            # floor division by a positive divisor preserves one-sided bounds
            return Interval(
                None if self.lo is None else self.lo // other.hi
                if self.lo >= 0 else self.lo // other.lo,
                None if self.hi is None else self.hi // other.lo
                if self.hi >= 0 else self.hi // other.hi)
        corners = [self.lo // other.lo, self.lo // other.hi,
                   self.hi // other.lo, self.hi // other.hi]
        return Interval(min(corners), max(corners))

    def __mod__(self, other: 'Interval') -> 'Interval':
        # Python modulo with a positive divisor always lands in [0, m-1]
        if not other.known or other.lo <= 0:
            return Interval.unknown()
        if self.within(0, other.lo - 1):
            return self        # a % m == a when 0 <= a < m for every m
        return Interval(0, other.hi - 1)

    def min_with(self, other: 'Interval') -> 'Interval':
        lo = None if self.lo is None or other.lo is None else min(self.lo, other.lo)
        # min(x, k) <= k even when x is unbounded above
        if self.hi is None:
            hi = other.hi
        elif other.hi is None:
            hi = self.hi
        else:
            hi = min(self.hi, other.hi)
        return Interval(lo, hi)

    def max_with(self, other: 'Interval') -> 'Interval':
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        if self.lo is None:
            lo = other.lo
        elif other.lo is None:
            lo = self.lo
        else:
            lo = max(self.lo, other.lo)
        return Interval(lo, hi)


def expr_key(e: Expr):
    """Hashable structural fingerprint of an expression tree.

    Two structurally identical trees — e.g. the ``gi`` inside a guard and
    the ``gi`` inside the guarded access, rewritten independently by the
    simplifier — map to the same key, which is what lets guard facts be
    recalled at access sites.
    """
    if isinstance(e, Var):
        return ('var', e._id)
    if isinstance(e, Constant):
        return ('const', e.value)
    if isinstance(e, ThreadIndex):
        return ('tid', e.dim)
    if isinstance(e, BlockIndex):
        return ('bid', e.dim)
    if isinstance(e, BinaryExpr):
        return ('bin', e.op, expr_key(e.a), expr_key(e.b))
    if isinstance(e, UnaryExpr):
        return ('un', e.op, expr_key(e.a))
    if isinstance(e, Cast):
        return ('cast', e.dtype.name, expr_key(e.expr))
    if isinstance(e, TensorElement):
        return ('elem', expr_key(e.base), tuple(expr_key(i) for i in e.indices))
    if isinstance(e, IfThenElse):
        return ('ite', expr_key(e.cond), expr_key(e.then_expr),
                expr_key(e.else_expr))
    if isinstance(e, Call):
        return ('call', e.func_name, tuple(expr_key(a) for a in e.args))
    raise TypeError(f'expr_key: unhandled node {type(e).__name__}')


class AffineForm:
    """Sparse linear form ``sum(coeff * term) + const`` over hashable keys.

    The race detector builds affine forms whose terms are tagged with the
    *side* of the conflicting pair they belong to (thread 1 vs thread 2),
    so subtracting two forms tells exactly which symbolic quantities the
    address difference still depends on.
    """

    __slots__ = ('terms', 'const')

    def __init__(self, terms: dict = None, const: int = 0):
        self.terms = {k: c for k, c in (terms or {}).items() if c != 0}
        self.const = const

    @staticmethod
    def constant(value: int) -> 'AffineForm':
        return AffineForm({}, value)

    @staticmethod
    def term(key, coeff: int = 1, const: int = 0) -> 'AffineForm':
        return AffineForm({key: coeff}, const)

    @property
    def is_const(self) -> bool:
        return not self.terms

    def __add__(self, other: 'AffineForm') -> 'AffineForm':
        terms = dict(self.terms)
        for k, c in other.terms.items():
            terms[k] = terms.get(k, 0) + c
        return AffineForm(terms, self.const + other.const)

    def __sub__(self, other: 'AffineForm') -> 'AffineForm':
        return self + other.scaled(-1)

    def scaled(self, factor: int) -> 'AffineForm':
        return AffineForm({k: c * factor for k, c in self.terms.items()},
                          self.const * factor)

    def __repr__(self):
        parts = [f'{c}*{k}' for k, c in sorted(self.terms.items(),
                                               key=lambda kv: repr(kv[0]))]
        parts.append(str(self.const))
        return ' + '.join(parts)
