"""Findings, reports, and the gate exception for the static analyzer."""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

#: finding severities: ``error`` gates compilation, ``note`` is advisory
#: (e.g. a data-dependent gather index the analyzer cannot bound)
SEVERITIES = ('error', 'note')

#: the analyzer's check names, also used as counter keys
CHECKS = ('verify', 'bounds', 'coverage', 'race')


@dataclass(frozen=True)
class Finding:
    """One analyzer diagnostic, always naming the kernel it came from."""

    check: str                      # one of CHECKS
    severity: str                   # one of SEVERITIES
    kernel: str                     # function name
    message: str                    # human-readable diagnostic
    buffer: Optional[str] = None    # buffer/tensor the finding is about
    detail: Optional[str] = None    # e.g. offending task tuple, phase index

    def __post_init__(self):
        assert self.check in CHECKS, self.check
        assert self.severity in SEVERITIES, self.severity

    def __str__(self):
        where = f' [{self.buffer}]' if self.buffer else ''
        extra = f' ({self.detail})' if self.detail else ''
        return (f'{self.severity}: {self.check}: {self.kernel}{where}: '
                f'{self.message}{extra}')


@dataclass
class AnalysisReport:
    """All findings from analyzing one function or module."""

    findings: List[Finding] = field(default_factory=list)
    kernels: List[str] = field(default_factory=list)

    def add(self, finding: Finding):
        self.findings.append(finding)

    def extend(self, other: 'AnalysisReport'):
        self.findings.extend(other.findings)
        self.kernels.extend(other.kernels)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == 'error']

    @property
    def notes(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == 'note']

    @property
    def ok(self) -> bool:
        return not self.errors

    def counts(self) -> dict:
        """``{check: error count}`` — the per-check gate counters."""
        out = {check: 0 for check in CHECKS}
        for f in self.errors:
            out[f.check] += 1
        return out

    def summary(self) -> str:
        status = 'ok' if self.ok else 'FAIL'
        head = (f'analysis {status}: {len(self.kernels)} kernel(s), '
                f'{len(self.errors)} error(s), {len(self.notes)} note(s)')
        lines = [head] + [f'  {f}' for f in self.findings]
        return '\n'.join(lines)


class AnalysisError(Exception):
    """Raised by the compile gate when a kernel fails static analysis."""

    def __init__(self, report: AnalysisReport):
        self.report = report
        super().__init__(report.summary())
