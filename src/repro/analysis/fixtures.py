"""Seeded-bad kernels: one compact fixture per analyzer failure class.

Each ``build_*`` function returns an ``IRModule`` containing exactly one
bug of one class — an out-of-bounds store, a coverage hole, duplicate
writers, or a missing barrier — so tests (and the ``--fixtures`` mode of
the lint CLI) can assert each check fires with a diagnostic naming the
right buffer.  :func:`strip_loop_barrier` additionally mutates a *real*
template module by deleting the trailing ``__syncthreads`` of its main
loop, turning a correct double-buffered matmul into a racy one — the
mutation the tuner gate rejects before measurement.
"""
from __future__ import annotations

from ..core.taskmap import CustomTaskMapping
from ..ir.builders import FunctionBuilder
from ..ir.expr import thread_idx
from ..ir.func import IRModule
from ..ir.functor import IRRewriter
from ..ir.stmt import BarrierStmt, ForStmt, SeqStmt, seq_stmt


def build_oob_store_kernel(block: int = 64) -> IRModule:
    """Writes ``smem[tid + 1]``: the last thread stores one past the end."""
    fb = FunctionBuilder('oob_store', grid_dim=1, block_dim=block)
    out = fb.tensor_param('out', 'float32', [block])
    smem = fb.shared_tensor('smem', 'float32', [block])
    tid = thread_idx()
    fb.store(smem, [tid + 1], 1.0)
    fb.sync()
    fb.store(out, [tid], smem[tid])
    return IRModule([fb.finish()], name='fixture_oob_store')


def build_hole_mapping_kernel(block: int = 4) -> IRModule:
    """A custom mapping that only ever touches the even tasks."""
    mapping = CustomTaskMapping(task_shape=[2 * block], num_workers=block,
                                func=lambda w: [(w * 2,)], name='evens')
    fb = FunctionBuilder('hole_mapping', grid_dim=1, block_dim=block)
    out = fb.tensor_param('out', 'float32', [2 * block])
    smem = fb.shared_tensor('smem', 'float32', [2 * block])
    with fb.for_task(mapping, worker=thread_idx()) as t0:
        fb.store(smem, [t0], 1.0)
    fb.sync()
    with fb.for_task(mapping, worker=thread_idx()) as t0:
        fb.store(out, [t0], smem[t0])
    return IRModule([fb.finish()], name='fixture_hole_mapping')


def build_duplicate_writer_kernel(block: int = 8) -> IRModule:
    """Two workers per task: ``w`` and ``w + block/2`` write the same slot."""
    mapping = CustomTaskMapping(task_shape=[block // 2], num_workers=block,
                                func=lambda w: [(w % (block // 2),)],
                                name='doubled')
    fb = FunctionBuilder('duplicate_writer', grid_dim=1, block_dim=block)
    out = fb.tensor_param('out', 'float32', [block // 2])
    smem = fb.shared_tensor('smem', 'float32', [block // 2])
    tid = thread_idx()
    with fb.for_task(mapping, worker=tid) as t0:
        fb.store(smem, [t0], tid)
    fb.sync()
    with fb.if_then(tid < block // 2):
        fb.store(out, [tid], smem[tid])
    return IRModule([fb.finish()], name='fixture_duplicate_writer')


def build_missing_barrier_kernel(block: int = 64,
                                 missing_barrier: bool = True) -> IRModule:
    """Store ``smem[tid]`` then read the neighbour's slot.

    With ``missing_barrier=True`` there is no ``__syncthreads`` between the
    write and the cross-thread read — the classic phase bug.  With
    ``missing_barrier=False`` the same kernel is provably race-free, which
    is the control case tests use.
    """
    name = 'missing_barrier' if missing_barrier else 'synced_exchange'
    fb = FunctionBuilder(name, grid_dim=1, block_dim=block)
    out = fb.tensor_param('out', 'float32', [block])
    smem = fb.shared_tensor('smem', 'float32', [block])
    tid = thread_idx()
    fb.store(smem, [tid], tid)
    if not missing_barrier:
        fb.sync()
    fb.store(out, [tid], smem[(tid + 1) % block])
    return IRModule([fb.finish()], name=f'fixture_{name}')


class _BarrierStripper(IRRewriter):
    """Remove the trailing barrier of every loop body that ends in one."""

    def __init__(self):
        super().__init__()
        self.stripped = 0

    def visit_ForStmt(self, stmt: ForStmt):
        body = self.visit(stmt.body)
        stmts = list(body.stmts) if isinstance(body, SeqStmt) else [body]
        if stmts and isinstance(stmts[-1], BarrierStmt):
            self.stripped += 1
            stmts = stmts[:-1]
            body = seq_stmt(stmts)
        if body is stmt.body:
            return stmt
        return ForStmt(stmt.loop_var, stmt.extent, body, stmt.unroll)


def strip_loop_barrier(module: IRModule) -> IRModule:
    """Delete each loop-trailing ``BarrierStmt`` from a real template module.

    Applied to the double-buffered matmul template this removes the sync
    that separates one iteration's shared-memory commit from the next
    iteration's reads — a genuine write-read race the analyzer must catch.
    """
    out = IRModule(name=f'{module.name}__racy')
    stripped = 0
    for func in module:
        rewriter = _BarrierStripper()
        body = rewriter.visit(func.body)
        stripped += rewriter.stripped
        out.add(type(func)(func.name, func.params, body, func.grid_dim,
                           func.block_dim, dict(func.attrs)))
    if not stripped:
        raise ValueError(f'{module.name}: no loop-trailing barrier to strip')
    return out


def poisoned_matmul_builder(bad_sched):
    """A ``build_matmul_module`` clone that de-syncs one target schedule.

    Used by the tuner-gate tests and benchmarks: every schedule builds the
    genuine template except ``bad_sched``, whose main-loop barrier is
    stripped — so the analyzer must reject exactly that candidate and the
    tuning outcome must be byte-identical to an un-poisoned run.
    """
    from ..sched import matmul_template

    def build(m, n, k, sched, name='matmul', batch=1):
        module = matmul_template.build_matmul_module(m, n, k, sched,
                                                     name=name, batch=batch)
        if sched == bad_sched:
            module = strip_loop_barrier(module)
        return module

    return build
