"""Analyzer façade: run every check over a function or module.

``analyze_function`` runs, in order: the ``verify_function``
well-formedness pass (unlowered), coverage for every ``ForTaskStmt``
mapping, the shared-memory race detector (on the unlowered body, where the
worker→task relation is still visible), then lowers the function exactly
as codegen does (``lower_task_mappings`` + ``simplify``), re-verifies the
lowered form, and bounds-checks every access.

:class:`ScheduleAnalyzer` adapts the module analyzer into the candidate
filter ``MatmulTuner.tune(analyzer=...)`` expects, so unsafe schedules are
rejected *before* any measurement is charged.
"""
from __future__ import annotations

from typing import Optional

from ..ir.func import Function, IRModule
from ..ir.functor import collect
from ..ir.passes.lower_task_mapping import lower_task_mappings
from ..ir.passes.simplify import simplify
from ..ir.passes.verify import IRVerificationError, verify_function
from ..ir.stmt import ForTaskStmt
from .bounds import check_bounds
from .coverage import check_coverage
from .races import check_races
from .report import AnalysisReport, Finding


def analyze_function(func: Function,
                     report: Optional[AnalysisReport] = None) -> AnalysisReport:
    """Run verify + coverage + races + bounds over one kernel function."""
    if report is None:
        report = AnalysisReport()
    report.kernels.append(func.name)

    try:
        verify_function(func, lowered=False)
    except IRVerificationError as exc:
        report.add(Finding(check='verify', severity='error', kernel=func.name,
                           message=str(exc)))
        return report    # a malformed function would crash the other checks

    seen_mappings = set()
    for stmt in collect(func.body, ForTaskStmt):
        if id(stmt.mapping) in seen_mappings:
            continue
        seen_mappings.add(id(stmt.mapping))
        cov = check_coverage(stmt.mapping)
        if cov.exact:
            continue
        report.add(Finding(
            check='coverage', severity='error', kernel=func.name,
            message=(f'task mapping {stmt.mapping!r} does not cover its '
                     f'domain exactly once: {cov.describe()}'),
            detail=f'task_shape={tuple(stmt.mapping.task_shape)}'))

    check_races(func, report)

    lowered = simplify(lower_task_mappings(func))
    try:
        verify_function(lowered, lowered=True)
    except IRVerificationError as exc:
        report.add(Finding(check='verify', severity='error', kernel=func.name,
                           message=f'lowered form: {exc}'))
        return report
    check_bounds(lowered, report)
    return report


def analyze_module(module: IRModule) -> AnalysisReport:
    """Analyze every function of an ``IRModule``; findings are merged."""
    report = AnalysisReport()
    for func in module:
        analyze_function(func, report)
    return report


class ScheduleAnalyzer:
    """Pre-measurement candidate filter for ``MatmulTuner.tune``.

    ``reject(m, n, k, sched, batch)`` instantiates the matmul template for
    the candidate schedule, runs the full analyzer, and returns the first
    error message if the kernel is unsafe (``None`` when clean).  Verdicts
    are cached per problem/schedule, so re-tuning the same space is free.

    ``builder`` defaults to the real template; tests inject a poisoned
    builder to prove rejected candidates never reach measurement.
    """

    def __init__(self, builder=None):
        if builder is None:
            from ..sched import matmul_template
            builder = matmul_template.build_matmul_module
        self.builder = builder
        self._verdicts: dict = {}

    def reject(self, m: int, n: int, k: int, sched,
               batch: int = 1) -> Optional[str]:
        key = (m, n, k, batch, sched)
        if key not in self._verdicts:
            module = self.builder(m, n, k, sched, name='candidate',
                                  batch=batch)
            report = analyze_module(module)
            self._verdicts[key] = (
                report.errors[0].message if report.errors else None)
        return self._verdicts[key]
