"""Shared-memory race detection over barrier phases.

The detector walks the *unlowered* kernel body (``ForTaskStmt`` intact, so
the worker→task relation is still visible), splits execution into barrier
phases with a monotone phase counter, and collects every access to a
``MemoryScope.SHARED`` tensor.  Two accesses to the same buffer in the same
phase, at least one a write, form a candidate pair; the pair is a race
unless the detector *proves* that for every pair of distinct threads the
touched addresses are disjoint.

Loops require care.  A loop whose body contains a barrier is walked twice:
the second pass re-walks the *same* statement tree with the loop variable
shifted by +1 (carried in the context, never substituted into the tree, so
statement identity is preserved), which models iteration ``i`` of one
thread overlapping iteration ``i+1`` of another in the shared phase —
exactly the hazard double buffering exists to avoid.  A barrier-free loop
is walked once, but its loop variable is treated as *independent* between
the two sides of a pair (side-tagged in the affine forms): different
threads may be at different iterations concurrently.

Disjointness proofs, per index dimension (any dimension provably disjoint
clears the pair):

* **const** — the affine difference is a nonzero constant;
* **thread-offset** — the difference is ``c * (t1 - t2)`` with ``c != 0``
  (e.g. ``smem[tid]``), nonzero whenever the threads differ;
* **mod-congruence** — both indices are ``x % m`` with the same constant
  ``m`` and ``x1 - x2`` is a constant not divisible by ``m`` (the
  double-buffer stage flip);
* **interval** — the guard-refined ranges of the two indices do not
  overlap (the reduction tree's ``smem[tid]`` vs ``smem[tid + stride]``
  under ``tid < stride``).

Whole-pair proofs:

* **mapping** — both accesses are the same statement inside a
  ``ForTaskStmt`` whose worker is exactly the thread index, whose mapping
  covers the domain exactly once with at least as many workers as threads,
  and whose loop variables all appear as direct index dimensions: distinct
  threads then own disjoint task sets, hence disjoint addresses;
* **pinning** — both accesses are guarded to the same single thread
  (``tid == 0``), or sit in mutually exclusive branches of a
  thread-uniform condition.

Anything unproven is reported as a may-race error naming the buffer and
the barrier phase.
"""
from __future__ import annotations

from typing import List, Optional

from ..ir.expr import (BinaryExpr, BlockIndex, Call, Cast, Constant, Expr,
                       IfThenElse, TensorElement, ThreadIndex, UnaryExpr, Var)
from ..ir.func import Function
from ..ir.functor import collect
from ..ir.stmt import (AssignStmt, BarrierStmt, BufferStoreStmt, DeclareStmt,
                       EvaluateStmt, ForStmt, ForTaskStmt, IfStmt, LetStmt,
                       SeqStmt, Stmt)
from ..ir.types import DataType, MemoryScope, TensorType
from .bounds import IntervalEnv
from .coverage import check_coverage
from .intervals import AffineForm, Interval, expr_key
from .report import AnalysisReport, Finding


def _const_int(e: Expr) -> Optional[int]:
    if isinstance(e, Constant) and isinstance(e.value, (int, bool)):
        return int(e.value)
    return None


def _contains_barrier(s: Stmt) -> bool:
    return bool(collect(s, BarrierStmt))


class _Access:
    """One shared-memory access with the full context needed for proofs."""

    __slots__ = ('buf', 'indices', 'is_write', 'phase', 'site', 'shift',
                 'guards', 'taskctx', 'env', 'uniform', 'independent',
                 'where')

    def __init__(self, buf, indices, is_write, phase, site, shift, guards,
                 taskctx, env, uniform, independent, where):
        self.buf = buf
        self.indices = list(indices)
        self.is_write = is_write
        self.phase = phase
        self.site = site              # id() of the store stmt / load expr
        self.shift = dict(shift)      # var _id -> +iteration offset (pass 2)
        self.guards = list(guards)    # [(cond expr, negated bool)]
        self.taskctx = list(taskctx)  # [(loop var ids, mapping, worker expr)]
        self.env = env                # guard-refined IntervalEnv snapshot
        self.uniform = uniform        # shared set: thread-uniform var ids
        self.independent = independent  # shared set: per-thread var ids
        self.where = where            # 'store'/'load' for messages


class _RaceChecker:
    def __init__(self, func: Function, report: AnalysisReport):
        self.func = func
        self.report = report
        self.accesses: List[_Access] = []
        self.phase = 0
        self.uniform: set = set()        # var ids uniform across threads
        self.independent: set = set()    # var ids that differ per thread
        self.reassigned = frozenset(
            s.var._id for s in collect(func.body, AssignStmt))
        self._coverage_cache: dict = {}
        self._reported: set = set()

    # ------------------------------------------------------------------
    def run(self):
        env = IntervalEnv(self.func.block_dim, self.func.grid_dim,
                          self.reassigned)
        self._stmt(self.func.body, env, shift={}, guards=[], taskctx=[])
        self._check_pairs()

    # -- thread dependence ---------------------------------------------
    def _thread_dependent(self, e: Expr) -> bool:
        if collect(e, ThreadIndex):
            return True
        return any(v._id in self.independent for v in collect(e, Var))

    # -- walking --------------------------------------------------------
    def _stmt(self, s: Stmt, env, shift, guards, taskctx):
        if isinstance(s, SeqStmt):
            for sub in s.stmts:
                self._stmt(sub, env, shift, guards, taskctx)
        elif isinstance(s, BarrierStmt):
            self.phase += 1
        elif isinstance(s, DeclareStmt):
            if s.init is not None:
                self._reads(s.init, env, shift, guards, taskctx)
                if isinstance(s.var.type, DataType):
                    if s.var._id not in self.reassigned:
                        env.bind(s.var, env.interval_of(s.init))
                    if self._thread_dependent(s.init) or \
                            s.var._id in self.reassigned:
                        self.independent.add(s.var._id)
                    else:
                        self.uniform.add(s.var._id)
        elif isinstance(s, LetStmt):
            self._reads(s.value, env, shift, guards, taskctx)
            env.bind(s.var, env.interval_of(s.value))
            if self._thread_dependent(s.value):
                self.independent.add(s.var._id)
            else:
                self.uniform.add(s.var._id)
            self._stmt(s.body, env, shift, guards, taskctx)
        elif isinstance(s, AssignStmt):
            self._reads(s.value, env, shift, guards, taskctx)
        elif isinstance(s, BufferStoreStmt):
            for idx in s.indices:
                self._reads(idx, env, shift, guards, taskctx)
            self._reads(s.value, env, shift, guards, taskctx)
            self._record(s.buf, s.indices, True, id(s), env, shift, guards,
                         taskctx, 'store')
        elif isinstance(s, EvaluateStmt):
            self._reads(s.expr, env, shift, guards, taskctx)
        elif isinstance(s, ForStmt):
            extent = env.interval_of(s.extent)
            hi = None if extent.hi is None else extent.hi - 1
            env.bind(s.loop_var, Interval(0, hi))
            if _contains_barrier(s.body) and not self._thread_dependent(s.extent):
                # every iteration syncs: only adjacent iterations can share
                # a phase.  Walk the same tree twice; pass 2 shifts the loop
                # variable by +1 in affine space (site identity preserved).
                self.uniform.add(s.loop_var._id)
                self._stmt(s.body, env, shift, guards, taskctx)
                shifted = dict(shift)
                shifted[s.loop_var._id] = shift.get(s.loop_var._id, 0) + 1
                self._stmt(s.body, env, shifted, guards, taskctx)
            else:
                # no sync inside: threads may be at different iterations
                # concurrently, so the loop variable is per-thread
                self.independent.add(s.loop_var._id)
                self._stmt(s.body, env, shift, guards, taskctx)
        elif isinstance(s, ForTaskStmt):
            for var, dim in zip(s.loop_vars, s.mapping.task_shape):
                env.bind(var, Interval(0, dim - 1))
                self.independent.add(var._id)
            ctx = taskctx + [(tuple(v._id for v in s.loop_vars), s.mapping,
                              s.worker)]
            self._stmt(s.body, env, shift, guards, ctx)
        elif isinstance(s, IfStmt):
            self._reads(s.cond, env, shift, guards, taskctx)
            start = self.phase
            self._stmt(s.then_body, env.assume(s.cond), shift,
                       guards + [(s.cond, False)], taskctx)
            after_then = self.phase
            if s.else_body is not None:
                self.phase = start
                self._stmt(s.else_body, env.assume(s.cond, negate=True),
                           shift, guards + [(s.cond, True)], taskctx)
            self.phase = max(self.phase, after_then)
        else:
            raise TypeError(f'races: unhandled stmt {type(s).__name__}')

    def _reads(self, e: Expr, env, shift, guards, taskctx):
        if isinstance(e, TensorElement):
            if isinstance(e.base, Var):
                self._record(e.base, e.indices, False, id(e), env, shift,
                             guards, taskctx, 'load')
            for idx in e.indices:
                self._reads(idx, env, shift, guards, taskctx)
        elif isinstance(e, IfThenElse):
            self._reads(e.cond, env, shift, guards, taskctx)
            self._reads(e.then_expr, env.assume(e.cond), shift,
                        guards + [(e.cond, False)], taskctx)
            self._reads(e.else_expr, env.assume(e.cond, negate=True), shift,
                        guards + [(e.cond, True)], taskctx)
        elif isinstance(e, BinaryExpr):
            self._reads(e.a, env, shift, guards, taskctx)
            self._reads(e.b, env, shift, guards, taskctx)
        elif isinstance(e, UnaryExpr):
            self._reads(e.a, env, shift, guards, taskctx)
        elif isinstance(e, Cast):
            self._reads(e.expr, env, shift, guards, taskctx)
        elif isinstance(e, Call):
            for arg in e.args:
                self._reads(arg, env, shift, guards, taskctx)

    def _record(self, buf, indices, is_write, site, env, shift, guards,
                taskctx, where):
        ttype = buf.type
        if not (isinstance(ttype, TensorType)
                and ttype.scope == MemoryScope.SHARED):
            return
        self.accesses.append(_Access(
            buf, indices, is_write, self.phase, site, shift, guards, taskctx,
            env.child(), self.uniform, self.independent, where))

    # -- affine abstraction --------------------------------------------
    def _affine(self, e: Expr, side: int, shift: dict) -> AffineForm:
        if isinstance(e, Constant) and isinstance(e.value, (int, bool)):
            return AffineForm.constant(int(e.value))
        if isinstance(e, Var):
            if e._id in self.independent:
                return AffineForm.term(('v', e._id, side))
            # thread-uniform: same value on both sides of the pair; the
            # pass-2 iteration shift lands in the constant
            return AffineForm.term(('v', e._id), const=shift.get(e._id, 0))
        if isinstance(e, ThreadIndex):
            return AffineForm.term(('t', e.dim, side))
        if isinstance(e, BlockIndex):
            return AffineForm.term(('b', e.dim))
        if isinstance(e, BinaryExpr):
            if e.op == '+':
                return (self._affine(e.a, side, shift)
                        + self._affine(e.b, side, shift))
            if e.op == '-':
                return (self._affine(e.a, side, shift)
                        - self._affine(e.b, side, shift))
            if e.op == '*':
                ca, cb = _const_int(e.a), _const_int(e.b)
                if cb is not None:
                    return self._affine(e.a, side, shift).scaled(cb)
                if ca is not None:
                    return self._affine(e.b, side, shift).scaled(ca)
        if isinstance(e, UnaryExpr) and e.op == '-':
            return self._affine(e.a, side, shift).scaled(-1)
        if isinstance(e, Cast):
            return self._affine(e.expr, side, shift)
        return self._opaque(e, side, shift)

    def _opaque(self, e: Expr, side: int, shift: dict) -> AffineForm:
        shift_items = tuple(sorted(
            (v._id, shift[v._id]) for v in collect(e, Var)
            if v._id in shift))
        tag = side if self._thread_dependent(e) else 'shared'
        return AffineForm.term(('x', expr_key(e), tag, shift_items))

    # -- proofs ---------------------------------------------------------
    def _shift_free(self, e: Expr, acc: _Access) -> bool:
        return not any(acc.shift.get(v._id) for v in collect(e, Var))

    def _dim_disjoint(self, ea: Expr, eb: Expr, a: _Access, b: _Access) -> bool:
        diff = self._affine(ea, 0, a.shift) - self._affine(eb, 1, b.shift)
        if diff.is_const:
            return diff.const != 0
        # c * (t1 - t2): nonzero exactly when the threads differ
        if diff.const == 0 and len(diff.terms) == 2:
            (k1, c1), (k2, c2) = sorted(diff.terms.items(),
                                        key=lambda kv: repr(kv[0]))
            if (c1 == -c2 and c1 != 0
                    and k1[0] == 't' and k2[0] == 't' and k1[1] == k2[1]):
                return True
        # mod-congruence: x%m vs y%m with x-y a constant not divisible by m
        if (isinstance(ea, BinaryExpr) and ea.op == '%'
                and isinstance(eb, BinaryExpr) and eb.op == '%'):
            ma, mb = _const_int(ea.b), _const_int(eb.b)
            if ma is not None and ma == mb and ma > 0:
                d = (self._affine(ea.a, 0, a.shift)
                     - self._affine(eb.a, 1, b.shift))
                if d.is_const and d.const % ma != 0:
                    return True
        # guard-refined interval separation (only valid when neither side
        # carries an iteration shift the intervals would not see)
        if self._shift_free(ea, a) and self._shift_free(eb, b):
            iva = a.env.interval_of(ea)
            ivb = b.env.interval_of(eb)
            if iva.hi is not None and ivb.lo is not None and iva.hi < ivb.lo:
                return True
            if ivb.hi is not None and iva.lo is not None and ivb.hi < iva.lo:
                return True
        return False

    def _coverage_exact(self, mapping) -> bool:
        key = id(mapping)
        if key not in self._coverage_cache:
            self._coverage_cache[key] = check_coverage(mapping).exact
        return self._coverage_cache[key]

    def _mapping_disjoint(self, a: _Access, b: _Access) -> bool:
        """Same site inside a bijective thread-worker ForTaskStmt."""
        if a.site != b.site:
            return False
        for lv_ids, mapping, worker in a.taskctx:
            wform = self._affine(worker, 0, {})
            if not (wform.const == 0 and wform.terms == {('t', 'x', 0): 1}):
                continue
            if mapping.num_workers < self.func.num_threads_per_block:
                continue
            if not self._coverage_exact(mapping):
                continue
            # every mapping loop variable must appear as a direct index
            # dimension, so distinct task tuples give distinct addresses
            direct = {idx._id for idx in a.indices if isinstance(idx, Var)}
            if all(vid in direct for vid in lv_ids):
                return True
        return False

    def _pinned_same_thread(self, a: _Access, b: _Access) -> bool:
        """Both sides provably executed by the same single thread."""
        tid = ThreadIndex('x')
        iva = a.env.interval_of(tid)
        ivb = b.env.interval_of(tid)
        return (iva.is_point and ivb.is_point and iva.lo == ivb.lo)

    def _exclusive_branches(self, a: _Access, b: _Access) -> bool:
        """Opposite arms of the same thread-uniform condition."""
        ga = {(expr_key(c), neg) for c, neg in a.guards
              if not self._thread_dependent(c)}
        for c, neg in b.guards:
            if self._thread_dependent(c):
                continue
            if (expr_key(c), not neg) in ga:
                return True
        return False

    # -- pairing --------------------------------------------------------
    def _check_pairs(self):
        by_group: dict = {}
        for acc in self.accesses:
            by_group.setdefault((acc.phase, id(acc.buf)), []).append(acc)
        for group in by_group.values():
            for i, a in enumerate(group):
                for b in group[i:]:
                    if not (a.is_write or b.is_write):
                        continue
                    self._check_pair(a, b)

    def _check_pair(self, a: _Access, b: _Access):
        # a self-pair (a is b) models two *distinct* threads at the same
        # statement; all proofs below already quantify over t1 != t2
        if self._exclusive_branches(a, b):
            return
        if self._pinned_same_thread(a, b):
            return
        if self._mapping_disjoint(a, b):
            return
        for ea, eb in zip(a.indices, b.indices):
            if self._dim_disjoint(ea, eb, a, b):
                return
        key = (a.site, b.site, a.phase)
        if key in self._reported:
            return
        self._reported.add(key)
        kind = 'write-write' if a.is_write and b.is_write else 'read-write'
        if a.site == b.site and a.shift == b.shift:
            what = f'the {a.where} at this site'
        else:
            what = f'a {a.where} and a {b.where}'
        self.report.add(Finding(
            check='race', severity='error', kernel=self.func.name,
            buffer=a.buf.name,
            message=(f'possible {kind} race on shared {a.buf.name!r}: '
                     f'{what} in barrier phase {a.phase} may touch the '
                     f'same element from distinct threads'),
            detail=f'phase={a.phase}'))


def check_races(func: Function,
                report: Optional[AnalysisReport] = None) -> AnalysisReport:
    """Detect shared-memory races in an *unlowered* kernel function."""
    if report is None:
        report = AnalysisReport(kernels=[func.name])
    _RaceChecker(func, report).run()
    return report
