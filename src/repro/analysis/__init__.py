"""Static analysis over lowered kernels: bounds, coverage, races.

The package turns the paper's analyzability claim — a task mapping is a
closed-form ``worker2task`` relation, not an opaque loop nest — into a
compile gate with three checks:

* :mod:`repro.analysis.bounds` — interval analysis over ``ir.expr`` proving
  every buffer access stays inside its declared ``TensorType`` shape;
* :mod:`repro.analysis.coverage` — proves a task mapping covers its task
  domain exactly once (no holes, no duplicate writers);
* :mod:`repro.analysis.races` — splits a kernel into ``BarrierStmt``
  intervals and proves write-write / read-write disjointness of shared
  memory accesses across distinct threads.

:func:`analyze_function` / :func:`analyze_module` run all three (plus the
``verify_function`` well-formedness pass) and return an
:class:`AnalysisReport`; ``python -m repro.analysis`` lints the schedule
templates and the model zoo from the command line.
"""
from .report import AnalysisError, AnalysisReport, Finding
from .intervals import Interval, expr_key
from .coverage import CoverageReport, check_coverage
from .bounds import check_bounds
from .races import check_races
from .analyzer import ScheduleAnalyzer, analyze_function, analyze_module

__all__ = [
    'AnalysisError', 'AnalysisReport', 'Finding',
    'Interval', 'expr_key',
    'CoverageReport', 'check_coverage',
    'check_bounds', 'check_races',
    'ScheduleAnalyzer', 'analyze_function', 'analyze_module',
]
