"""repro — a reproduction of Hidet: Task-Mapping Programming Paradigm for
Deep Learning Tensor Programs (ASPLOS 2023).

Public API highlights:

* ``repro.core``: task mappings (``repeat``, ``spatial``, composition).
* ``repro.ir``: the tensor-program IR and ``FunctionBuilder``.
* ``repro.graph``: computation graphs, operators, and ``trace`` helpers.
* ``repro.models``: ResNet-50 / Inception-V3 / MobileNet-V2 / Bert / GPT-2.
* ``repro.runtime``: the end-to-end compile pipeline (``optimize``).
* ``repro.baselines``: loop-oriented scheduling, AutoTVM/Ansor-like tuners,
  kernel-library and framework executors used in the paper's evaluation.
"""
__version__ = '0.1.0'

from .core import repeat, spatial, column_repeat, column_spatial, auto_map, TaskMapping

__all__ = ['repeat', 'spatial', 'column_repeat', 'column_spatial', 'auto_map',
           'TaskMapping', '__version__']
