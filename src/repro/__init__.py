"""repro — a reproduction of Hidet: Task-Mapping Programming Paradigm for
Deep Learning Tensor Programs (ASPLOS 2023).

Public API highlights:

* ``repro.core``: task mappings (``repeat``, ``spatial``, composition).
* ``repro.ir``: the tensor-program IR and ``FunctionBuilder``.
* ``repro.graph``: computation graphs, operators, and ``trace`` helpers.
* ``repro.models``: ResNet-50 / Inception-V3 / MobileNet-V2 / Bert / GPT-2.
* ``repro.runtime``: the end-to-end compile pipeline (``optimize``, also
  re-exported here as ``repro.optimize``).
* ``repro.serve``: the simulated serving stack (registry, batcher, fleet,
  lifecycle, and the declarative ``DeploymentSpec``/``Deployment`` API);
  imported lazily on first attribute access.
* ``repro.baselines``: loop-oriented scheduling, AutoTVM/Ansor-like tuners,
  kernel-library and framework executors used in the paper's evaluation.
"""
__version__ = '0.1.0'

from .core import repeat, spatial, column_repeat, column_spatial, auto_map, TaskMapping
from .runtime import optimize

__all__ = ['repeat', 'spatial', 'column_repeat', 'column_spatial', 'auto_map',
           'TaskMapping', 'optimize', 'serve', '__version__']


def __getattr__(name):
    # repro.serve pulls in the whole serving stack; load it on first touch
    # so `import repro` stays as light as the compiler pipeline alone
    if name == 'serve':
        import importlib
        return importlib.import_module('.serve', __name__)
    raise AttributeError(f'module {__name__!r} has no attribute {name!r}')
