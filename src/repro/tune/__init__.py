"""Learned-cost-model tuning and the parallel tuning service.

This package sits *above* the runtime: it trains on the measurement records
a :class:`~repro.runtime.cache.ScheduleCache` accumulates and plugs into
:class:`~repro.core.tuning.MatmulTuner` through a duck-typed protocol, so
the runtime never imports it.

* :mod:`repro.tune.features` — deterministic featurization of (problem,
  schedule) pairs: occupancy, launch geometry, modeled work terms;
* :mod:`repro.tune.cost_model` — :class:`RidgeCostModel`, a pure-python
  ridge regressor on log-latency with underfit and calibration gates;
* :mod:`repro.tune.service` — :func:`run_tuning_service`, sharding a model
  zoo's tuning problems across simulated workers that share one cache
  through the append-only record log.
"""
from .corpus import DEFAULT_SEED_PROBLEMS, SeedReport, seed_cost_model
from .cost_model import RidgeCostModel
from .features import FEATURE_NAMES, featurize
from .service import (TuningServiceReport, WorkerReport, run_tuning_service,
                      shard_problems)

__all__ = ['FEATURE_NAMES', 'featurize', 'RidgeCostModel',
           'DEFAULT_SEED_PROBLEMS', 'SeedReport', 'seed_cost_model',
           'TuningServiceReport', 'WorkerReport', 'run_tuning_service',
           'shard_problems']
