"""Seed corpus for the learned cost model.

A cost model can only rank what it has seen measured, and a cold cache has
seen nothing — the first model through a guided executor would fall back to
exhaustive tuning anyway.  Seeding replaces that accidental curriculum with
a deliberate one: a small, *diverse* set of synthetic matmul problems
(transformer projections, im2col'd convolutions, batched attention heads,
small-`m` tail blocks) measured over a strided subsample of the schedule
space.  Measurements are problem+schedule keyed, not space keyed, so a
subsampled space yields perfectly valid training rows at a fraction of the
bill — the corpus below costs roughly half of exhaustively tuning the
smallest zoo model, and every measurement is charged to the simulated clock
like any other tuning work (the trajectory experiments count it against the
guided arm).
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.space import matmul_schedule_space
from ..core.tuning import HIDET_TUNING_COSTS, MatmulTuner
from ..gpusim.clock import SimulatedClock
from ..gpusim.device import DeviceSpec, RTX3090
from ..runtime.cache import MeasurementRecord, ScheduleCache

__all__ = ['DEFAULT_SEED_PROBLEMS', 'SeedReport', 'seed_cost_model']

#: (m, n, k, batch) — one problem per GEMM regime the zoo exercises:
#: transformer QKV/MLP projections, a mid square, a batched attention head,
#: im2col'd convolutions across their awkward corners (wide-m stems,
#: skinny-n/tiny-k pointwise convs, small-m deep-k tails).  The narrow conv
#: shapes matter most: without them the model extrapolates into the
#: skinny-GEMM regime, miscalibrates, and every such task falls back to a
#: full enumeration
DEFAULT_SEED_PROBLEMS: tuple[tuple[int, int, int, int], ...] = (
    (128, 768, 768, 1),
    (128, 3072, 768, 1),
    (512, 512, 512, 1),
    (3136, 64, 576, 1),
    (784, 128, 1152, 1),
    (49, 2048, 512, 1),
    (128, 128, 64, 12),
    (1225, 48, 192, 1),
    (12544, 96, 16, 1),
    (784, 32, 144, 1),
    (196, 96, 384, 1),
    (64, 192, 1280, 1),
)


@dataclass(frozen=True)
class SeedReport:
    """What seeding measured and what it cost."""

    problems: int
    #: measurement records newly added to the cache
    records: int
    #: candidate measurements charged to the clock
    measurements: int
    #: simulated seconds the seeding cost
    tuning_seconds: float


def seed_cost_model(cache: ScheduleCache, device: DeviceSpec = RTX3090,
                    problems: Sequence[tuple[int, int, int, int]] = DEFAULT_SEED_PROBLEMS,
                    space=None, space_stride: int = 2,
                    clock: Optional[SimulatedClock] = None) -> SeedReport:
    """Measure a seed corpus into ``cache`` for cost-model training.

    Tunes each ``(m, n, k, batch)`` problem exhaustively over every
    ``space_stride``-th schedule of the space (the subsample keeps the
    corpus diverse while cutting its cost proportionally) and records every
    measurement.  The tuning bill lands on ``clock`` — seeding is not free,
    and honest trajectory accounting must include it.
    """
    if space is None:
        space = matmul_schedule_space(device)
    space = list(space)
    if space_stride > 1:
        space = space[::space_stride]
    clock = clock if clock is not None else SimulatedClock()
    start = clock.elapsed_seconds
    tuner = MatmulTuner(device, HIDET_TUNING_COSTS, clock)
    records = 0
    for m, n, k, batch in problems:
        result = tuner.tune(m, n, k, space=space, batch=batch)
        for sched, latency in result.latencies.items():
            if cache.record_measurement(MeasurementRecord(
                    kind='matmul', m=m, n=n, k=k, batch=batch,
                    schedule=sched, latency=latency)):
                records += 1
    return SeedReport(problems=len(problems), records=records,
                      measurements=tuner.measurements_charged,
                      tuning_seconds=clock.elapsed_seconds - start)
