"""Schedule featurization for the learned cost model.

A candidate :class:`~repro.core.schedule.MatmulSchedule` applied to a
concrete problem becomes a fixed-width numeric vector.  The features are
deliberately *model-shaped* rather than raw: they are the quantities the
analytic performance model (:mod:`repro.gpusim.perfmodel`) says matter —
log-scale work terms from :func:`repro.sched.matmul_template.matmul_stats`,
the occupancy summary from :func:`repro.gpusim.occupancy.occupancy_features`
(including the limiting-resource one-hot), launch geometry (wave count, tail
efficiency), and the schedule's own shape knobs.  A ridge regressor over
these terms in log-latency space is enough to rank a hardware-centric
candidate set, because latency is (to first order) a max of a few products
of them.

Everything here is pure, deterministic python: the same
``(device, problem, schedule)`` always yields the same vector, bit for bit —
the cost-model determinism tests rely on that.
"""
from __future__ import annotations

import math

from ..core.schedule import MatmulSchedule
from ..gpusim.device import DeviceSpec, RTX3090
from ..gpusim.occupancy import OCCUPANCY_FEATURE_NAMES, occupancy_features
from ..sched.matmul_template import matmul_stats

__all__ = ['FEATURE_NAMES', 'featurize']


def _log2(value: float) -> float:
    """log2 clamped away from zero (work terms are positive by construction,
    but fused traffic extras can be exactly 0.0)."""
    return math.log2(value) if value > 0.0 else 0.0


#: feature vector layout, in order.  Append-only: tests pin the names, and a
#: reorder silently invalidates any in-memory fitted model.
FEATURE_NAMES: tuple[str, ...] = (
    # problem shape (padded-tile-free: what the user asked for)
    'log2_m', 'log2_n', 'log2_k', 'log2_batch',
    # schedule shape knobs
    'log2_block_m', 'log2_block_n', 'log2_block_k',
    'log2_threads', 'log2_warps',
    'log2_thread_tile', 'log2_warp_outer',
    'double_buffer', 'split_k_used', 'log2_split_k',
    # occupancy summary (limiting-resource one-hot included)
    ) + OCCUPANCY_FEATURE_NAMES + (
    # launch geometry
    'log2_waves', 'partial_wave_fraction', 'tail_efficiency',
    # modeled work terms, summed over the schedule's kernels (split-k adds a
    # reduce kernel — its traffic is part of the candidate's true cost)
    'num_kernels', 'log2_flops', 'log2_gmem_read', 'log2_gmem_write',
    'log2_smem_traffic', 'log2_fused_extra_bytes',
    'flops_per_byte',
    # naive roofline terms: work normalized by the device's *peak* rates,
    # no efficiency/occupancy/overlap applied.  Latency is roughly the max
    # of a few such terms with learned discounts — a linear model in log
    # space cannot express the max from the raw work features alone, so we
    # hand it the hinge directly and let it learn the corrections
    'log2_compute_time_naive', 'log2_memory_time_naive',
    'log2_smem_time_naive', 'log2_roofline_naive',
    'log2_wave_quant', 'occupancy_per_sqrt_ilp',
    # the quantized roofline — roofline × ceil(waves)/waves — is the product
    # that dominates partially-filled launches (a 12-block kernel on an
    # 82-SM device runs at per-wave speed, not aggregate-peak speed).  The
    # factors are individually above; the product is what latency tracks,
    # and a linear model cannot multiply
    'log2_quantized_roofline', 'log2_ceil_waves',
    # tiny kernels are launch-overhead dominated: latency ≈ overhead + body,
    # an *additive* structure no weighting of log-work features can express.
    # Folding the device's launch overhead into the roofline term hands the
    # model the right asymptote at both ends
    'log2_roofline_plus_overhead',
)


def featurize(m: int, n: int, k: int, sched: MatmulSchedule,
              device: DeviceSpec = RTX3090, batch: int = 1,
              extra_read_bytes: float = 0.0,
              extra_write_bytes: float = 0.0) -> tuple[float, ...]:
    """Feature vector of ``sched`` applied to an ``m×n×k`` (batched) matmul.

    Ordered as :data:`FEATURE_NAMES`.  Pure and deterministic.
    """
    stats = matmul_stats(m, n, k, sched, batch=batch,
                         extra_read_bytes=extra_read_bytes,
                         extra_write_bytes=extra_write_bytes)
    main = stats[0]
    occ = occupancy_features(device, sched.threads, sched.smem_bytes,
                             sched.regs_per_thread)
    # concurrency the device can host for the *main* kernel: how many waves
    # of blocks the launch needs, and how full the last wave is (the paper's
    # tail-wave argument for split-k, §6.3.4)
    resident_blocks = occ[1]
    concurrent = max(1.0, resident_blocks * device.num_sms)
    waves = main.grid_blocks / concurrent
    partial_wave = math.ceil(waves) - waves if waves > 0 else 0.0
    # fraction of the padded tile work that is useful (predicated tails are
    # executed and thrown away, §4.3)
    gx, gy, gz = sched.grid(m, n)
    padded = float(gx * sched.block_n) * (gy * sched.block_m)
    tail_efficiency = (m * n) / padded if padded > 0 else 0.0

    total_flops = sum(s.flops for s in stats)
    total_read = sum(s.gmem_read_bytes for s in stats)
    total_write = sum(s.gmem_write_bytes for s in stats)
    total_smem = sum(s.smem_traffic_bytes for s in stats)
    total_bytes = total_read + total_write
    extra = extra_read_bytes + extra_write_bytes

    t_compute = total_flops / device.peak_flops
    t_memory = total_bytes / device.peak_bandwidth
    t_smem = sum(s.smem_traffic_bytes for s in stats) / device.peak_shared_bandwidth
    wave_quant = math.ceil(waves) / waves if waves > 0 else 1.0
    ilp = max(1.0, float(sched.thread_tile[0] * sched.thread_tile[1]))

    return (
        _log2(float(m)), _log2(float(n)), _log2(float(k)),
        _log2(float(batch)),
        _log2(float(sched.block_m)), _log2(float(sched.block_n)),
        _log2(float(sched.block_k)),
        _log2(float(sched.threads)), _log2(float(sched.num_warps)),
        _log2(float(sched.thread_tile[0] * sched.thread_tile[1])),
        _log2(float(sched.warp_outer[0] * sched.warp_outer[1])),
        1.0 if sched.double_buffer else 0.0,
        1.0 if sched.split_k > 1 else 0.0,
        _log2(float(sched.split_k)),
    ) + occ + (
        _log2(waves), partial_wave, tail_efficiency,
        float(len(stats)),
        _log2(total_flops), _log2(total_read), _log2(total_write),
        _log2(total_smem), _log2(extra),
        total_flops / total_bytes if total_bytes > 0 else 0.0,
        _log2(t_compute), _log2(t_memory), _log2(t_smem),
        _log2(max(t_compute, t_memory, t_smem)),
        _log2(wave_quant),
        occ[0] / math.sqrt(ilp),
        _log2(max(t_compute, t_memory, t_smem) * wave_quant),
        _log2(float(math.ceil(waves))) if waves > 0 else 0.0,
        _log2(max(t_compute, t_memory, t_smem) * wave_quant
              + device.kernel_launch_overhead * len(stats)),
    )
