"""A learned cost model over schedule features: ridge regression on
log-latency.

The model trains on the :class:`~repro.runtime.cache.MeasurementRecord`s a
:class:`~repro.runtime.cache.ScheduleCache` accumulates — every candidate a
tuner actually measured, across every problem tuned through that cache.
``bind(cache)`` attaches the training source; fitting is lazy and keyed on
the cache's ``measurement_version``, so the model silently refreshes as
tuning adds data and costs nothing when it doesn't.

Ridge over standardized features, solved by Gaussian elimination in pure
python (no numpy — the model must stay importable anywhere the runtime is,
and ~30 features × a few thousand samples is microseconds of arithmetic).
Log-space targets because schedule latencies span orders of magnitude and
ranking is what matters, not absolute error.

The model refuses to rank until it is *calibrated*: enough samples, enough
distinct problems (a model that has seen one GEMM extrapolates garbage),
and an in-sample R² above a floor.  ``rank`` returns ``None`` before then
and the tuner falls back to exhaustive measurement — see
:meth:`repro.core.tuning.MatmulTuner.tune` for the second (post-measurement)
calibration gate.
"""
from __future__ import annotations

import math
from dataclasses import astuple
from typing import Optional, Sequence

from ..core.schedule import MatmulSchedule
from ..gpusim.device import DeviceSpec, RTX3090
from .features import FEATURE_NAMES, featurize

__all__ = ['RidgeCostModel']


def _solve(a: list[list[float]], b: list[float]) -> list[float]:
    """Solve ``a @ x = b`` by Gaussian elimination with partial pivoting.

    ``a`` is symmetric positive definite here (ridge normal equations), so
    the pivot never vanishes; partial pivoting still bounds the rounding
    error deterministically.
    """
    size = len(b)
    aug = [row[:] + [b[i]] for i, row in enumerate(a)]
    for col in range(size):
        pivot = max(range(col, size), key=lambda r: abs(aug[r][col]))
        if pivot != col:
            aug[col], aug[pivot] = aug[pivot], aug[col]
        pivot_value = aug[col][col]
        if pivot_value == 0.0:
            raise ArithmeticError('singular normal equations despite ridge')
        for row in range(col + 1, size):
            factor = aug[row][col] / pivot_value
            if factor == 0.0:
                continue
            for j in range(col, size + 1):
                aug[row][j] -= factor * aug[col][j]
    x = [0.0] * size
    for row in range(size - 1, -1, -1):
        acc = aug[row][size] - sum(aug[row][j] * x[j]
                                   for j in range(row + 1, size))
        x[row] = acc / aug[row][row]
    return x


class RidgeCostModel:
    """Ranks matmul candidates by predicted latency; trains on cache
    measurements.

    Satisfies the duck-typed protocol :class:`repro.core.tuning.MatmulTuner`
    expects of a cost model (``rank`` / ``top_k`` /
    ``calibration_tolerance`` / ``bind`` / ``source``).
    """

    def __init__(self, device: DeviceSpec = RTX3090, *,
                 alpha: float = 1e-2,
                 rank_focus: float = 8.0,
                 top_k: int = 20,
                 calibration_tolerance: float = 0.25,
                 min_samples: int = 64,
                 min_problems: int = 2,
                 min_r2: float = 0.6):
        self.device = device
        #: ridge penalty on the standardized features
        self.alpha = float(alpha)
        #: importance-weighting exponent: sample weight is
        #: ``(problem_best / latency) ** rank_focus``.  Plain least squares
        #: (0.0) spends its capacity fitting the bulk of slow candidates;
        #: ranking only cares about telling the fast ones apart, so the
        #: near-best region is where the fit must be sharp
        self.rank_focus = float(rank_focus)
        #: how many predicted-best candidates the tuner measures
        self.top_k = int(top_k)
        #: mean |Δ log latency| on the measured top-k above which the tuner
        #: escalates to full measurement
        self.calibration_tolerance = float(calibration_tolerance)
        self.min_samples = int(min_samples)
        self.min_problems = int(min_problems)
        self.min_r2 = float(min_r2)
        #: bound ScheduleCache (training source); None until bind()
        self.source = None
        self._fitted_version: int = -1
        self._weights: Optional[list[float]] = None   # [bias] + per-feature
        self._mean: Optional[list[float]] = None
        self._std: Optional[list[float]] = None
        #: in-sample R² of the last fit (log space); nan before any fit
        self.train_r2: float = math.nan
        self.num_samples: int = 0
        self.num_problems: int = 0

    # -- training ------------------------------------------------------

    def bind(self, cache) -> 'RidgeCostModel':
        """Attach the cache whose measurements this model trains on."""
        self.source = cache
        self._fitted_version = -1
        return self

    def featurize(self, m: int, n: int, k: int, sched: MatmulSchedule,
                  batch: int = 1, extra_read_bytes: float = 0.0,
                  extra_write_bytes: float = 0.0) -> tuple[float, ...]:
        return featurize(m, n, k, sched, device=self.device, batch=batch,
                         extra_read_bytes=extra_read_bytes,
                         extra_write_bytes=extra_write_bytes)

    def fit(self, records: Sequence) -> bool:
        """Fit on measurement records; returns readiness.

        Records are sorted by their canonical key first, so the fit (and
        every float-rounding decision inside it) is independent of the
        order measurements were taken in.
        """
        usable = sorted((r for r in records
                         if r.kind == 'matmul' and r.latency > 0.0),
                        key=lambda r: r.key)
        self.num_samples = len(usable)
        self.num_problems = len({r.problem_key for r in usable})
        self._weights = None
        self.train_r2 = math.nan
        if self.num_samples < self.min_samples \
                or self.num_problems < self.min_problems:
            return False

        rows = [list(self.featurize(r.m, r.n, r.k, r.schedule, batch=r.batch,
                                    extra_read_bytes=r.extra_read_bytes,
                                    extra_write_bytes=r.extra_write_bytes))
                for r in usable]
        targets = [math.log(r.latency) for r in usable]
        # importance weights: how close each sample is to its problem's best
        best: dict[tuple, float] = {}
        for r in usable:
            current = best.get(r.problem_key)
            if current is None or r.latency < current:
                best[r.problem_key] = r.latency
        sample_weights = [(best[r.problem_key] / r.latency) ** self.rank_focus
                          for r in usable]
        dim = len(FEATURE_NAMES)
        count = float(self.num_samples)
        mean = [sum(row[j] for row in rows) / count for j in range(dim)]
        std = []
        for j in range(dim):
            var = sum((row[j] - mean[j]) ** 2 for row in rows) / count
            std.append(math.sqrt(var) if var > 0.0 else 1.0)
        for row in rows:
            for j in range(dim):
                row[j] = (row[j] - mean[j]) / std[j]

        # weighted normal equations with a bias column; the bias is not
        # penalized, and the ridge term scales with the total weight so
        # alpha means the same thing at any corpus size
        width = dim + 1
        gram = [[0.0] * width for _ in range(width)]
        moment = [0.0] * width
        weight_total = sum(sample_weights)
        for row, y, sw in zip(rows, targets, sample_weights):
            aug_row = [1.0] + row
            for i in range(width):
                ri = aug_row[i] * sw
                if ri == 0.0:
                    continue
                moment[i] += ri * y
                gram_i = gram[i]
                for j in range(i, width):
                    gram_i[j] += ri * aug_row[j]
        for i in range(width):
            for j in range(i + 1, width):
                gram[j][i] = gram[i][j]
        for i in range(1, width):
            gram[i][i] += self.alpha * weight_total
        try:
            weights = _solve(gram, moment)
        except ArithmeticError:
            return False

        # readiness R² under the same weighting the fit optimized — the
        # unweighted R² of a rank-focused fit would punish exactly the
        # slow-candidate error the objective chose to ignore
        predictions = [weights[0] + sum(w * x for w, x in zip(weights[1:], row))
                       for row in rows]
        y_mean = (sum(sw * y for sw, y in zip(sample_weights, targets))
                  / weight_total)
        ss_tot = sum(sw * (y - y_mean) ** 2
                     for sw, y in zip(sample_weights, targets))
        ss_res = sum(sw * (y - p) ** 2
                     for sw, y, p in zip(sample_weights, targets, predictions))
        self.train_r2 = 1.0 - ss_res / ss_tot if ss_tot > 0.0 else 0.0
        self._weights, self._mean, self._std = weights, mean, std
        return self.ready

    @property
    def ready(self) -> bool:
        """Calibrated enough to rank (the underfit gate)."""
        return (self._weights is not None
                and self.num_samples >= self.min_samples
                and self.num_problems >= self.min_problems
                and self.train_r2 >= self.min_r2)

    def _refresh(self) -> None:
        if self.source is None:
            return
        version = self.source.measurement_version
        if version != self._fitted_version:
            self.fit(self.source.measurements())
            self._fitted_version = version

    # -- inference -----------------------------------------------------

    def predict(self, m: int, n: int, k: int, sched: MatmulSchedule,
                batch: int = 1, extra_read_bytes: float = 0.0,
                extra_write_bytes: float = 0.0) -> float:
        """Predicted latency in seconds (requires a fitted model)."""
        if self._weights is None:
            raise RuntimeError('cost model is not fitted')
        features = self.featurize(m, n, k, sched, batch=batch,
                                  extra_read_bytes=extra_read_bytes,
                                  extra_write_bytes=extra_write_bytes)
        log_latency = self._weights[0] + sum(
            w * (x - mu) / sd for w, x, mu, sd
            in zip(self._weights[1:], features, self._mean, self._std))
        return math.exp(log_latency)

    def rank(self, m: int, n: int, k: int,
             candidates: Sequence[MatmulSchedule],
             batch: int = 1, extra_read_bytes: float = 0.0,
             extra_write_bytes: float = 0.0
             ) -> Optional[list[tuple[MatmulSchedule, float]]]:
        """Candidates ordered by predicted latency, best first, as
        ``(schedule, predicted_seconds)`` pairs — or ``None`` while the
        model is underfit (the tuner then measures exhaustively).

        Ties break on the schedule's field tuple, never on input order, so
        the ranking is a pure function of (training data, problem, set of
        candidates).
        """
        self._refresh()
        if not self.ready:
            return None
        scored = [(sched, self.predict(m, n, k, sched, batch=batch,
                                       extra_read_bytes=extra_read_bytes,
                                       extra_write_bytes=extra_write_bytes))
                  for sched in candidates]
        scored.sort(key=lambda pair: (pair[1], astuple(pair[0])))
        return scored
