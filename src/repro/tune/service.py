"""The parallel tuning service: shard a model zoo's tuning work across
simulated workers that share one schedule cache.

The serial story so far: one executor tunes every problem it meets, in graph
order, on one simulated clock.  This module splits that bill.  A *probe*
executor enumerates every graph's :class:`~repro.runtime.executor.TuningProblem`
without tuning anything (the problems carry their cache signatures, so any
worker's results are byte-compatible with a compiling executor's).  The
deduplicated problem list is sharded with LPT (longest-processing-time
first) on each problem's estimated tuning weight, and each shard runs on
its own worker: a fresh executor, clock, and private cache warmed from the
shared starting state.

Workers share results through the cache's append-only record log
(:meth:`~repro.runtime.cache.ScheduleCache.save` appends only records that
differ from disk; replay is last-record-wins), so N workers finishing in
any order produce the same final state — and
:func:`~repro.runtime.cache.compact_log` canonicalizes the file so a
4-worker run and a serial run of the same zoo are *byte-identical*.  That
identity is the service's correctness proof, and it is what the old
merge-on-save scheme could not provide.

Simulated speedup is real speedup: each worker's bill is its own clock's
``elapsed_seconds``, the service's wall time is the slowest worker, and the
serial bill is the sum — the quantities Figure 17-style tuning-cost
experiments already report.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..gpusim.clock import SimulatedClock
from ..gpusim.device import DeviceSpec, RTX3090
from ..runtime.cache import ScheduleCache, compact_log
from ..runtime.executor import HidetExecutor, TuningProblem

__all__ = ['WorkerReport', 'TuningServiceReport', 'shard_problems',
           'run_tuning_service']


@dataclass(frozen=True)
class WorkerReport:
    """One worker's share of the tuning bill."""

    worker: int
    problems: int
    #: simulated seconds this worker's clock accumulated
    tuning_seconds: float
    #: cache entries this worker produced (new schedules found)
    new_entries: int
    #: measurement records this worker produced
    new_measurements: int


@dataclass
class TuningServiceReport:
    """What the service did and what it cost."""

    workers: list[WorkerReport] = field(default_factory=list)
    #: distinct problems tuned (after cross-graph dedup)
    total_problems: int = 0
    #: problems skipped because another graph already posted the signature
    duplicate_problems: int = 0
    #: problems resolved by the warm starting state at zero cost
    warm_hits: int = 0
    #: the shared cache all workers' results merged into
    cache: Optional[ScheduleCache] = None
    #: record-log path the workers shared (None for in-memory runs)
    log_path: Optional[str] = None

    @property
    def serial_seconds(self) -> float:
        """The one-worker bill: every shard's work, summed."""
        return sum(w.tuning_seconds for w in self.workers)

    @property
    def wall_seconds(self) -> float:
        """The service's simulated wall time: the slowest worker."""
        return max((w.tuning_seconds for w in self.workers), default=0.0)

    @property
    def speedup(self) -> float:
        """serial / wall — near-linear when LPT balances the shards."""
        wall = self.wall_seconds
        return self.serial_seconds / wall if wall > 0.0 else 1.0


def _measurement_key(problem: TuningProblem) -> tuple:
    """Problems that enumerate and measure the *same* candidate set.

    Two matmul groups can differ in cache signature (their fusion
    structures name different epilogue chains) while posing the identical
    measurement problem — same sizes, same fused traffic.  The tuner
    memoizes on exactly this key, so the second such problem on a worker is
    free; splitting the pair across workers makes both pay full price.
    Sharding therefore keeps equivalence groups together — without this,
    the 4-worker "serial bill" (sum of shard bills) overstates an honest
    one-worker run and the reported speedup is a lie.
    """
    if problem.kind == 'matmul':
        return ('matmul', problem.m, problem.n, problem.k, problem.batch,
                problem.extra_read_bytes, problem.extra_write_bytes)
    return (problem.kind, problem.signature)


def shard_problems(problems: Sequence[TuningProblem],
                   num_workers: int) -> list[list[TuningProblem]]:
    """LPT-shard problems by weight into ``num_workers`` lists.

    Problems are first grouped by measurement equivalence (see
    :func:`_measurement_key`): a group is charged once per worker, so it
    ships as a unit at the weight of one tune.  Groups go heaviest-first,
    each onto the currently lightest shard — the classic 4/3-approximation
    to makespan.  Ties (equal weights, equal loads) break on signature and
    shard index, so the sharding is a pure function of the problem set.
    """
    if num_workers < 1:
        raise ValueError(f'num_workers must be >= 1, got {num_workers}')
    grouped: dict[tuple, list[TuningProblem]] = {}
    for problem in problems:
        grouped.setdefault(_measurement_key(problem), []).append(problem)
    units: list[tuple[float, str, list[TuningProblem]]] = []
    for members in grouped.values():
        members.sort(key=lambda p: p.signature)
        units.append((members[0].weight, members[0].signature, members))
    units.sort(key=lambda unit: (-unit[0], unit[1]))
    shards: list[list[TuningProblem]] = [[] for _ in range(num_workers)]
    loads = [0.0] * num_workers
    for weight, _, members in units:
        target = min(range(num_workers), key=lambda i: (loads[i], i))
        shards[target].extend(members)
        loads[target] += weight
    return shards


def run_tuning_service(models, device: DeviceSpec = RTX3090,
                       num_workers: int = 4,
                       log_path: Optional[str] = None,
                       cache: Optional[ScheduleCache] = None,
                       cost_model_factory=None,
                       record_measurements: bool = True,
                       executor_options: Optional[dict] = None
                       ) -> TuningServiceReport:
    """Tune a model zoo's schedule problems across simulated workers.

    ``models`` is a sequence of ``(name, flow_graph)`` pairs; the name
    becomes the namespace on the cache records a worker writes.  The shared
    starting state is ``cache`` (fresh if omitted), additionally warmed
    from ``log_path`` when that file exists; problems the starting state
    already resolves are counted in ``warm_hits`` and never shipped to a
    worker.  ``cost_model_factory``, when given, is called once per worker
    to build that worker's learned cost model (each binds to its private
    cache).  ``executor_options`` are forwarded to every executor — probe
    and workers alike — so signature-affecting settings (space, fusion,
    split-k) stay consistent.

    On return the shared ``cache`` holds every result; with ``log_path``
    the record log has been appended by each worker and compacted, so
    repeated runs (or differently-sharded runs) of the same zoo leave a
    byte-identical file.
    """
    options = dict(executor_options or {})
    shared = cache if cache is not None else ScheduleCache()
    if log_path is not None:
        shared.warm(log_path, missing_ok=True)

    probe = HidetExecutor(device, cache=ScheduleCache(), **options)
    problems: list[TuningProblem] = []
    seen: set[str] = set()
    duplicates = 0
    warm_hits = 0
    for name, graph in models:
        for problem in probe.tuning_problems(graph, namespace=name):
            if problem.signature in seen:
                duplicates += 1
                continue
            seen.add(problem.signature)
            if problem.signature in shared:
                warm_hits += 1
                continue
            problems.append(problem)

    report = TuningServiceReport(total_problems=len(problems),
                                 duplicate_problems=duplicates,
                                 warm_hits=warm_hits,
                                 cache=shared, log_path=log_path)
    base_state = shared.to_json()
    base_entries = len(shared)
    base_measurements = shared.measurement_count
    shards = shard_problems(problems, num_workers)
    for index, shard in enumerate(shards):
        worker_cache = ScheduleCache()
        worker_cache.merge_json(base_state)
        clock = SimulatedClock()
        cost_model = cost_model_factory() if cost_model_factory else None
        worker = HidetExecutor(device, clock=clock, cache=worker_cache,
                               cost_model=cost_model,
                               record_measurements=record_measurements,
                               **options)
        for problem in shard:
            worker.tune_problem(problem)
        report.workers.append(WorkerReport(
            worker=index, problems=len(shard),
            tuning_seconds=clock.elapsed_seconds,
            new_entries=len(worker_cache) - base_entries,
            new_measurements=(worker_cache.measurement_count
                              - base_measurements)))
        # publish: append this worker's results to the shared log (the
        # append-only format makes completion order irrelevant), and fold
        # them into the in-memory shared cache
        if log_path is not None:
            worker_cache.save(log_path)
        shared.merge_json(worker_cache.to_json())
    if log_path is not None:
        compact_log(log_path)
    return report
