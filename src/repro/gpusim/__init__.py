"""GPU simulator substrate: device specs, occupancy, and the latency model."""
from .device import DeviceSpec, RTX3090, A100, LAPTOP_GPU
from .occupancy import (Occupancy, compute_occupancy, occupancy_features,
                        OCCUPANCY_FEATURE_NAMES)
from .stats import KernelStats, LaunchStats, OVERLAP_NONE, OVERLAP_DOUBLE_BUFFER, OVERLAP_MULTI_STAGE
from .perfmodel import PerfModel, ModelParams, estimate_latency
from .clock import SimulatedClock, TuningCosts
from .decode import DecodeCostModel, HOST_LINK_BYTES_PER_S

__all__ = [
    'DeviceSpec', 'RTX3090', 'A100', 'LAPTOP_GPU',
    'DecodeCostModel', 'HOST_LINK_BYTES_PER_S',
    'Occupancy', 'compute_occupancy', 'occupancy_features',
    'OCCUPANCY_FEATURE_NAMES',
    'KernelStats', 'LaunchStats', 'OVERLAP_NONE', 'OVERLAP_DOUBLE_BUFFER',
    'OVERLAP_MULTI_STAGE',
    'PerfModel', 'ModelParams', 'estimate_latency',
    'SimulatedClock', 'TuningCosts',
]
