"""Analytic kernel-latency model (the reproduction's GPU).

The model combines the classic ingredients that drive the paper's results:

1. **Occupancy-aware efficiency.**  A kernel reaches a fraction of peak
   compute/bandwidth that grows with warp occupancy; per-thread ILP (large
   register tiles) lowers the occupancy needed to hide latency (so big tiles
   win until they kill occupancy — the central matmul trade-off).
2. **Roofline terms.**  ``Tc = flops / (peak_flops·eff_c)``,
   ``Tm = bytes / (peak_bw·eff_m·coalesce)``, plus a shared-memory term.
3. **Pipeline overlap.**  ``T = max(Tc, Tm) + (1 − α)·min(Tc, Tm)``: with
   single buffering (α≈0.15) loads and MMAs serialize at every tile
   (Figure 3); double buffering (α≈0.9, Figure 5) overlaps them.  This is the
   optimization loop-oriented scheduling cannot express (paper §3.1).
4. **Wave quantization.**  Latency scales with ``ceil(waves)/waves`` where a
   wave is one resident set of blocks across all SMs — few big blocks
   under-fill the GPU (Figure 20's batch-size behaviour).
5. **Fixed costs.**  Kernel launch overhead and a minimum block latency.

Registers beyond the hardware budget trigger a spill penalty instead of a
hard failure (mirroring ``nvcc`` behaviour with ``-maxrregcount``).
"""
from __future__ import annotations

import math
from dataclasses import dataclass

from .device import DeviceSpec, RTX3090
from .occupancy import compute_occupancy
from .stats import KernelStats, LaunchStats

__all__ = ['PerfModel', 'estimate_latency', 'ModelParams']


@dataclass(frozen=True)
class ModelParams:
    """Calibration constants of the latency model (documented in EXPERIMENTS.md)."""

    base_compute_efficiency: float = 0.88   # fp32 FMA issue efficiency at full occupancy
    base_memory_efficiency: float = 0.92    # achievable fraction of DRAM bandwidth
    compute_occ_demand: float = 0.45        # occupancy needed for full compute rate at ILP=1
    memory_occ_demand: float = 0.55         # occupancy needed to saturate DRAM at ILP=1
    min_occ_demand: float = 0.08            # floor of the occupancy demand after ILP discount
    spill_penalty_per_reg: float = 0.012    # compute slowdown per spilled register
    min_block_latency: float = 1.2e-6       # seconds: smallest useful block execution
    divergence_floor: float = 0.02          # efficiency floor


class PerfModel:
    """Latency estimator for a device; stateless apart from its constants."""

    def __init__(self, device: DeviceSpec = RTX3090, params: ModelParams = ModelParams()):
        self.device = device
        self.params = params

    # ------------------------------------------------------------------

    def estimate(self, stats: KernelStats) -> LaunchStats:
        device, params = self.device, self.params

        regs = min(stats.regs_per_thread, device.max_registers_per_thread)
        spilled = max(0, stats.regs_per_thread - device.max_registers_per_thread)
        occ = compute_occupancy(device, stats.threads_per_block,
                                stats.smem_bytes_per_block, regs)
        if not occ.viable:
            raise ValueError(
                f'kernel {stats.name!r} cannot launch: limited by {occ.limited_by} '
                f'(threads={stats.threads_per_block}, smem={stats.smem_bytes_per_block}, '
                f'regs={stats.regs_per_thread})')

        # 1. actual concurrency: the grid may not fill the resource limit
        concurrent_per_sm = min(occ.resident_blocks_per_sm,
                                math.ceil(stats.grid_blocks / device.num_sms))
        warps_per_block = math.ceil(stats.threads_per_block / device.warp_size)
        occupancy = min(1.0, concurrent_per_sm * warps_per_block / device.max_warps_per_sm)

        # 2. occupancy-driven efficiencies, discounted by per-thread ILP
        ilp = max(1.0, stats.ilp)
        c_demand = max(params.min_occ_demand, params.compute_occ_demand / math.sqrt(ilp))
        m_demand = max(params.min_occ_demand, params.memory_occ_demand / math.sqrt(ilp))
        eff_c = params.base_compute_efficiency * min(1.0, occupancy / c_demand)
        eff_m = params.base_memory_efficiency * min(1.0, occupancy / m_demand)
        if spilled:
            eff_c /= (1.0 + params.spill_penalty_per_reg * spilled)
        eff_c = max(params.divergence_floor, eff_c)
        eff_m = max(params.divergence_floor, eff_m)

        # 3. roofline terms (aggregate over the whole launch)
        t_compute = stats.flops / (device.peak_flops * eff_c)
        t_memory = stats.gmem_bytes / (device.peak_bandwidth * eff_m * stats.coalesce_factor)
        t_smem = (stats.smem_traffic_bytes * stats.smem_conflict_factor
                  / device.peak_shared_bandwidth)

        # 4. pipeline overlap between DRAM traffic and compute
        alpha = stats.overlap
        t_body = max(t_compute, t_memory) + (1.0 - alpha) * min(t_compute, t_memory)
        t_body = max(t_body, t_smem)

        # 5. wave quantization: latency rounds up to whole waves of resident
        #    blocks; a fractional wave also covers idle-SM underutilization
        capacity = concurrent_per_sm * device.num_sms
        waves = stats.grid_blocks / capacity
        quant = math.ceil(waves) / waves
        t_body *= quant

        # 6. fixed costs
        t_body = max(t_body, params.min_block_latency * math.ceil(waves))
        latency = t_body + device.kernel_launch_overhead

        return LaunchStats(
            latency=latency,
            compute_time=t_compute,
            memory_time=t_memory,
            smem_time=t_smem,
            occupancy=occupancy,
            resident_blocks_per_sm=concurrent_per_sm,
            waves=waves,
            limited_by=occ.limited_by,
        )

    def latency(self, stats: KernelStats) -> float:
        """Seconds for one launch of the kernel."""
        return self.estimate(stats).latency


def estimate_latency(stats: KernelStats, device: DeviceSpec = RTX3090) -> float:
    """Convenience one-shot latency estimate in seconds."""
    return PerfModel(device).latency(stats)
