"""CUDA occupancy calculation.

Given a kernel's per-block resource usage, compute how many thread blocks an
SM can host concurrently (the minimum over the thread, shared-memory,
register-file, and block-count limits) and the resulting warp occupancy.
This reproduces the resource story in paper §2.1: "The number of maximum
resident thread blocks per SM is limited by the size of shared memory,
register file, and warp scheduling units."
"""
from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceSpec

__all__ = ['Occupancy', 'compute_occupancy',
           'occupancy_features', 'OCCUPANCY_FEATURE_NAMES']


@dataclass(frozen=True)
class Occupancy:
    resident_blocks_per_sm: int
    resident_warps_per_sm: int
    occupancy: float          # resident warps / max warps, in [0, 1]
    limited_by: str           # 'threads' | 'shared_memory' | 'registers' | 'blocks' | 'launch'

    @property
    def viable(self) -> bool:
        return self.resident_blocks_per_sm >= 1


def compute_occupancy(device: DeviceSpec, threads_per_block: int,
                      smem_bytes_per_block: int, regs_per_thread: int) -> Occupancy:
    """Resident blocks/SM and occupancy for the given per-block footprint."""
    if threads_per_block <= 0:
        raise ValueError('threads_per_block must be positive')
    if threads_per_block > device.max_threads_per_block:
        return Occupancy(0, 0, 0.0, 'launch')
    if smem_bytes_per_block > device.max_shared_memory_per_block:
        return Occupancy(0, 0, 0.0, 'shared_memory')
    if regs_per_thread > device.max_registers_per_thread:
        # the compiler would spill instead; callers model spilling separately,
        # occupancy treats the request as clamped
        regs_per_thread = device.max_registers_per_thread

    limits = {
        'threads': device.max_threads_per_sm // threads_per_block,
        'blocks': device.max_blocks_per_sm,
    }
    if smem_bytes_per_block > 0:
        limits['shared_memory'] = device.shared_memory_per_sm // smem_bytes_per_block
    if regs_per_thread > 0:
        limits['registers'] = device.registers_per_sm // (regs_per_thread * threads_per_block)

    limiting = min(limits, key=lambda k: limits[k])
    resident_blocks = limits[limiting]
    if resident_blocks == 0:
        return Occupancy(0, 0, 0.0, limiting)

    warps_per_block = (threads_per_block + device.warp_size - 1) // device.warp_size
    resident_warps = resident_blocks * warps_per_block
    occupancy = min(1.0, resident_warps / device.max_warps_per_sm)
    return Occupancy(resident_blocks, resident_warps, occupancy, limiting)


#: the limiter one-hot is ordered to match :attr:`Occupancy.limited_by`'s
#: documented categories — a stable order is part of the feature contract
#: (learned cost models persist nothing, but their determinism tests compare
#: feature vectors across runs)
_LIMITERS = ('threads', 'shared_memory', 'registers', 'blocks', 'launch')

OCCUPANCY_FEATURE_NAMES: tuple[str, ...] = (
    'occupancy',
    'resident_blocks_per_sm',
    'resident_warps_per_sm',
) + tuple(f'limited_by_{name}' for name in _LIMITERS)


def occupancy_features(device: DeviceSpec, threads_per_block: int,
                       smem_bytes_per_block: int,
                       regs_per_thread: int) -> tuple[float, ...]:
    """Occupancy summary as a fixed-width numeric feature vector.

    Returns, in the order of :data:`OCCUPANCY_FEATURE_NAMES`: the warp
    occupancy in ``[0, 1]``, the resident block and warp counts per SM, and
    a one-hot encoding of the limiting resource.  Learned cost models
    (:mod:`repro.tune`) consume this — the limiter one-hot is what lets a
    linear model discover e.g. that register-limited schedules underperform
    on a given device without hand-crafting that interaction.
    """
    occ = compute_occupancy(device, threads_per_block,
                            smem_bytes_per_block, regs_per_thread)
    return (float(occ.occupancy),
            float(occ.resident_blocks_per_sm),
            float(occ.resident_warps_per_sm),
            ) + tuple(1.0 if occ.limited_by == name else 0.0
                      for name in _LIMITERS)
