"""Simulated wall-clock for tuning-cost accounting (paper Figure 17).

Tuners charge the clock for compilation and measurement work; parallel
compilation across CPU cores (the paper's testbed has a 24-thread CPU) is
modeled by dividing batch compile time by the worker count.
"""
from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ['SimulatedClock', 'TuningCosts']


@dataclass(frozen=True)
class TuningCosts:
    """Per-trial cost constants of a tuning system (seconds)."""

    compile_seconds: float          # compile one candidate kernel
    measure_seconds: float          # benchmark one candidate on the GPU
    search_overhead_seconds: float = 0.0   # per-round search/cost-model time
    parallel_compile_workers: int = 1


class SimulatedClock:
    """Accumulates simulated seconds of tuning work."""

    def __init__(self):
        self._elapsed = 0.0
        self.events: list[tuple[str, float]] = []

    @property
    def elapsed_seconds(self) -> float:
        return self._elapsed

    @property
    def elapsed_hours(self) -> float:
        return self._elapsed / 3600.0

    def charge(self, label: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError('cannot charge negative time')
        self._elapsed += seconds
        self.events.append((label, seconds))

    def charge_compile_batch(self, costs: TuningCosts, num_candidates: int,
                             label: str = 'compile') -> None:
        """Compile ``num_candidates`` kernels on a parallel worker pool."""
        workers = max(1, costs.parallel_compile_workers)
        # ceil-div batches: workers compile concurrently, measurement is serial
        batches = math.ceil(num_candidates / workers)
        self.charge(label, batches * costs.compile_seconds)

    def charge_measurements(self, costs: TuningCosts, num_candidates: int,
                            label: str = 'measure') -> None:
        self.charge(label, num_candidates * costs.measure_seconds)

    def summary(self) -> dict[str, float]:
        by_label: dict[str, float] = {}
        for label, seconds in self.events:
            by_label[label] = by_label.get(label, 0.0) + seconds
        return by_label
