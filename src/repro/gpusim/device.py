"""GPU device specifications for the analytic performance model.

The default device mirrors the paper's testbed GPU (NVIDIA GeForce RTX 3090,
Ampere GA102): 82 SMs, 936 GB/s GDDR6X, 35.6 fp32 TFLOPS.  The numbers here
feed :mod:`repro.gpusim.perfmodel`; they are public so experiments can also
run on alternative devices (an A100-like and a laptop-class part are
provided, used by ablation benchmarks).
"""
from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ['DeviceSpec', 'device_family_key', 'RTX3090', 'A100', 'LAPTOP_GPU']


@dataclass(frozen=True)
class DeviceSpec:
    """Static hardware parameters of a CUDA-capable GPU."""

    name: str
    num_sms: int
    warp_size: int = 32
    max_threads_per_block: int = 1024
    max_threads_per_sm: int = 1536
    max_blocks_per_sm: int = 16
    registers_per_sm: int = 65536
    max_registers_per_thread: int = 255
    shared_memory_per_sm: int = 100 * 1024       # bytes usable for smem
    max_shared_memory_per_block: int = 48 * 1024  # bytes without opt-in
    peak_fp32_tflops: float = 35.6
    peak_bandwidth_gbps: float = 936.0            # GB/s
    shared_bandwidth_ratio: float = 19.0          # smem bw as multiple of DRAM bw
    kernel_launch_overhead: float = 4e-6          # seconds per kernel launch
    l2_cache_bytes: int = 6 * 1024 * 1024
    memory_bytes: int = 24 * 1024 ** 3            # DRAM capacity (RTX 3090: 24 GiB)

    @property
    def peak_flops(self) -> float:
        """Peak fp32 FLOP/s."""
        return self.peak_fp32_tflops * 1e12

    @property
    def peak_bandwidth(self) -> float:
        """Peak DRAM bandwidth in bytes/s."""
        return self.peak_bandwidth_gbps * 1e9

    @property
    def peak_shared_bandwidth(self) -> float:
        return self.peak_bandwidth * self.shared_bandwidth_ratio

    @property
    def max_warps_per_sm(self) -> int:
        return self.max_threads_per_sm // self.warp_size


def device_family_key(device: DeviceSpec) -> tuple:
    """Launch-compatibility class of a device (the cross-device transfer gate).

    Two devices belong to the same *family* when a candidate kernel
    enumerated for one can at least launch on the other: the per-block and
    per-thread limits that bound the schedule space must agree.  Capacity
    parameters (SM count, bandwidth, peak FLOPS, shared memory per SM, DRAM
    capacity) are deliberately excluded — they change which candidate is *fastest*, which
    re-measurement on the local device handles, not which candidates exist.
    Per-candidate differences inside a family (e.g. a schedule whose shared
    memory tile exceeds a smaller device's per-block limit) are caught by
    :meth:`~repro.core.schedule.MatmulSchedule.is_valid` at transfer time.
    """
    return (device.warp_size, device.max_threads_per_block,
            device.max_registers_per_thread)


#: The paper's evaluation GPU (Section 6.1).
RTX3090 = DeviceSpec(name='RTX3090', num_sms=82)

#: Data-center Ampere part, used by ablation benches.
A100 = DeviceSpec(
    name='A100', num_sms=108, max_threads_per_sm=2048, max_blocks_per_sm=32,
    shared_memory_per_sm=164 * 1024, peak_fp32_tflops=19.5,
    peak_bandwidth_gbps=1555.0, memory_bytes=40 * 1024 ** 3,
)

#: A small laptop-class GPU (for sensitivity studies).
LAPTOP_GPU = DeviceSpec(
    name='LaptopGPU', num_sms=30, peak_fp32_tflops=10.9, peak_bandwidth_gbps=360.0,
    memory_bytes=8 * 1024 ** 3,
)
