"""Kernel statistics consumed by the performance model.

Every scheduling path (Hidet templates, rule-based schedules, the baseline
tuners, the kernel library) produces a :class:`KernelStats` describing the
kernel it would launch.  The analytic model in :mod:`.perfmodel` turns stats
into latency.  Stats are *schedule-derived*: tile sizes and pipelining choices
determine memory traffic, resource footprints, and overlap — which is exactly
the level at which the paper's arguments live (double buffering changes
``overlap``; tile shape changes traffic and occupancy; padding wastes flops).
"""
from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

__all__ = ['KernelStats', 'LaunchStats']

#: pipeline overlap factors (fraction of min(Tc, Tm) hidden by overlap)
OVERLAP_NONE = 0.15          # single-buffered: sync-separated load/compute phases
OVERLAP_DOUBLE_BUFFER = 0.90  # paper Fig. 5: load of next tile overlaps compute
OVERLAP_MULTI_STAGE = 0.95   # >2-stage asynchronous pipeline (cp.async style)


@dataclass(frozen=True)
class KernelStats:
    """Per-kernel resource and work description."""

    name: str
    grid_blocks: int
    threads_per_block: int
    flops: float                    # useful+padded floating-point operations
    gmem_read_bytes: float          # DRAM reads
    gmem_write_bytes: float         # DRAM writes
    smem_bytes_per_block: int = 0   # static shared memory footprint
    regs_per_thread: int = 32
    smem_traffic_bytes: float = 0.0  # total shared-memory traffic
    overlap: float = OVERLAP_NONE   # memory/compute overlap factor in [0, 1]
    ilp: float = 1.0                # per-thread independent-work proxy (>= 1)
    coalesce_factor: float = 1.0    # fraction of DRAM bandwidth usable (0..1]
    smem_conflict_factor: float = 1.0  # >= 1; bank-conflict slowdown on smem
    is_memory_bound_hint: bool = False

    def __post_init__(self):
        if self.grid_blocks <= 0 or self.threads_per_block <= 0:
            raise ValueError(f'kernel {self.name!r}: empty launch configuration')
        if not (0.0 <= self.overlap <= 1.0):
            raise ValueError(f'kernel {self.name!r}: overlap must be in [0, 1]')
        if self.coalesce_factor <= 0 or self.coalesce_factor > 1:
            raise ValueError(f'kernel {self.name!r}: coalesce_factor must be in (0, 1]')

    @property
    def gmem_bytes(self) -> float:
        return self.gmem_read_bytes + self.gmem_write_bytes

    def scaled(self, factor: float) -> 'KernelStats':
        """Scale the work terms (used when batching identical sub-kernels)."""
        return replace(
            self,
            grid_blocks=max(1, int(self.grid_blocks * factor)),
            flops=self.flops * factor,
            gmem_read_bytes=self.gmem_read_bytes * factor,
            gmem_write_bytes=self.gmem_write_bytes * factor,
            smem_traffic_bytes=self.smem_traffic_bytes * factor,
        )


@dataclass(frozen=True)
class LaunchStats:
    """A kernel's estimated latency breakdown (returned by the perf model)."""

    latency: float                 # seconds, including launch overhead
    compute_time: float
    memory_time: float
    smem_time: float
    occupancy: float
    resident_blocks_per_sm: int
    waves: float
    limited_by: str

    @property
    def bound(self) -> str:
        """Which roofline term dominates."""
        terms = {'compute': self.compute_time, 'memory': self.memory_time,
                 'shared': self.smem_time}
        return max(terms, key=lambda k: terms[k])
