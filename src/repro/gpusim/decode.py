"""Prefill-vs-decode latency split for autoregressive serving.

The serve-time latency model (:class:`~repro.runtime.compiled.CompiledGraph`
latencies per compiled batch bucket) prices one *full-sequence* forward
pass: ``bucket_latency[b]`` is the modeled seconds for ``b`` sequences of
``seq_length`` tokens each.  Autoregressive decoding has two phases with
very different economics, and :class:`DecodeCostModel` splits them:

* **prefill** — one forward pass over the whole prompt.  Compute scales
  with the number of prompt tokens, so the cost is the bucket latency
  scaled by ``prompt_tokens / seq_length``: the weight traffic embedded in
  the full-sequence latency amortizes over the prompt's tokens, which is
  why prefill is cheap *per token*.
* **decode step** — one token per active sequence.  The whole weight
  matrix must stream from DRAM for a single token position, so every step
  pays a width-independent floor of ``weights_bytes / peak_bandwidth`` on
  top of the per-position compute (``bucket_latency / seq_length`` at the
  smallest compiled bucket covering the batch width).  The floor is what
  continuous batching amortizes: doubling the decode width roughly doubles
  tokens/second until compute catches up.

When a KV cache outgrows device DRAM the spilled bytes live in host
memory and must cross the PCIe link every step;
:meth:`DecodeCostModel.swap_penalty_seconds` prices that thrashing at
:data:`HOST_LINK_BYTES_PER_S`.  This is the mechanism by which unbounded
KV admission collapses decode tail latency in the serving ablation.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from .device import DeviceSpec

__all__ = ['DecodeCostModel', 'HOST_LINK_BYTES_PER_S']

#: effective host<->device bandwidth for KV pages spilled past DRAM
#: capacity (PCIe-class link, deliberately far below DRAM bandwidth)
HOST_LINK_BYTES_PER_S = 16e9


@dataclass(frozen=True)
class DecodeCostModel:
    """Price prefill passes and decode steps from compiled bucket latencies.

    ``bucket_latency`` maps compiled batch bucket -> modeled seconds of one
    full-sequence forward at that bucket (``RegisteredModel.latency``);
    ``seq_length`` is the sequence length those graphs were compiled at;
    ``weights_bytes`` is the parameter footprint streamed on every decode
    step.  All outputs are simulated seconds; the model is pure and
    deterministic.
    """

    device: DeviceSpec
    seq_length: int
    bucket_latency: Mapping[int, float]
    weights_bytes: int
    host_link_bytes_per_s: float = HOST_LINK_BYTES_PER_S
    #: ascending compiled widths, derived once from ``bucket_latency``
    widths: tuple = field(init=False, repr=False)

    def __post_init__(self):
        if self.seq_length < 1:
            raise ValueError(f'seq_length must be >= 1, got {self.seq_length}')
        if not self.bucket_latency:
            raise ValueError('need at least one compiled bucket latency')
        if self.weights_bytes < 0:
            raise ValueError('weights_bytes must be non-negative')
        if self.host_link_bytes_per_s <= 0:
            raise ValueError('host_link_bytes_per_s must be positive')
        object.__setattr__(self, 'bucket_latency',
                           {int(b): float(s)
                            for b, s in self.bucket_latency.items()})
        object.__setattr__(self, 'widths',
                           tuple(sorted(self.bucket_latency)))

    @property
    def max_width(self) -> int:
        """The widest compiled bucket (the decode batch width ceiling)."""
        return self.widths[-1]

    def bucket_for(self, width: int) -> int:
        """Smallest compiled bucket covering ``width`` active sequences."""
        if width < 1:
            raise ValueError(f'width must be >= 1, got {width}')
        for bucket in self.widths:
            if bucket >= width:
                return bucket
        raise ValueError(f'no compiled bucket covers decode width {width} '
                         f'(buckets: {list(self.widths)})')

    def prefill_seconds(self, prompt_tokens: int, width: int = 1) -> float:
        """One forward pass over ``prompt_tokens`` prompt tokens.

        The full-sequence bucket latency scales by the fraction of the
        compiled sequence the prompt fills — prefill amortizes weight
        traffic over the prompt's tokens — plus one kernel-launch floor.
        """
        if prompt_tokens < 1:
            raise ValueError(f'prompt_tokens must be >= 1, got {prompt_tokens}')
        latency = self.bucket_latency[self.bucket_for(width)]
        return (self.device.kernel_launch_overhead
                + latency * (prompt_tokens / self.seq_length))

    def decode_step_seconds(self, width: int) -> float:
        """One token for each of ``width`` active sequences.

        Priced by the smallest compiled bucket covering ``width``: the
        per-position compute share of that bucket's full-sequence latency,
        plus the weight-streaming floor every step pays regardless of
        width.  Per-*token* cost therefore falls as width grows — the
        continuous-batching win.
        """
        compute = self.bucket_latency[self.bucket_for(width)] / self.seq_length
        floor = self.weights_bytes / self.device.peak_bandwidth
        return self.device.kernel_launch_overhead + floor + compute

    def swap_penalty_seconds(self, overflow_bytes: int) -> float:
        """Per-step cost of KV bytes spilled past device DRAM capacity.

        Spilled pages cross the host link both ways each step; the model
        charges one traversal of the overflow per step, which is enough to
        collapse decode once overflow reaches a few steps' worth of
        weight-streaming floor.
        """
        if overflow_bytes <= 0:
            return 0.0
        return overflow_bytes / self.host_link_bytes_per_s
