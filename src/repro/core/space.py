"""Hardware-centric schedule spaces (paper §4.3).

The space is built from hardware-aligned tile candidates and is *independent
of the input size*: boundary handling comes from predicated loads, so the
same ~180 matmul schedules apply to 1024³, to 2039³ (a prime!), and to every
convolution lowered to implicit GEMM.  This is what makes exhaustive
enumeration feasible (paper: "Simply enumerating all schedules would be
enough and can be done within one minute").

Contrast with :mod:`repro.baselines.input_space`, the input-centric space of
loop-oriented schedulers, whose size explodes with the divisor structure of
the input extents (Figure 7) and which is *empty of valid tilings* for prime
extents (Figure 19).
"""
from __future__ import annotations

from typing import Iterator

from .schedule import MatmulSchedule, ReduceSchedule
from ..gpusim.device import DeviceSpec, RTX3090

__all__ = ['matmul_schedule_space', 'reduce_schedule_space', 'split_k_candidates']

_BLOCK_WARPS = [(1, 1), (1, 2), (2, 1), (2, 2), (2, 4), (4, 2)]
_WARP_OUTER = [(1, 1), (1, 2), (2, 1), (2, 2)]
_THREAD_LAYOUT = [(4, 8)]
_THREAD_TILE = [(4, 4), (2, 2), (4, 8), (8, 4)]
_BLOCK_K = [8, 16, 32]


def matmul_schedule_space(device: DeviceSpec = RTX3090,
                          double_buffer: bool = True,
                          split_k: int = 1) -> list[MatmulSchedule]:
    """Enumerate the valid matmul schedules for a device (~180 on RTX 3090)."""
    space: list[MatmulSchedule] = []
    for bw in _BLOCK_WARPS:
        for wo in _WARP_OUTER:
            for tl in _THREAD_LAYOUT:
                for tt in _THREAD_TILE:
                    for bk in _BLOCK_K:
                        sched = MatmulSchedule(
                            block_warps=bw, warp_outer=wo, thread_layout=tl,
                            thread_tile=tt, block_k=bk,
                            double_buffer=double_buffer, split_k=split_k)
                        if not sched.is_valid(device):
                            continue
                        # hardware-aligned pruning: keep tiles in the band that
                        # modern GPUs can profit from (cf. CUTLASS tile menu)
                        bm, bn = sched.block_m, sched.block_n
                        if not (16 <= bm <= 256 and 16 <= bn <= 256):
                            continue
                        if max(bm, bn) // min(bm, bn) > 4:
                            continue
                        elems_per_thread = bm * bn // sched.threads
                        if not (16 <= elems_per_thread <= 64):
                            continue
                        space.append(sched)
    return space


def split_k_candidates(m: int, n: int, k: int, device: DeviceSpec = RTX3090) -> list[int]:
    """Parallel-k factors worth trying for a problem (paper §6.3.4).

    Splitting the reduction dimension adds thread blocks, which only pays off
    when the output grid alone cannot saturate the SMs (e.g. convolutions with
    few output pixels but deep reductions).
    """
    candidates = [1]
    approx_blocks = max(1, (m // 64)) * max(1, (n // 64))
    if approx_blocks < device.num_sms * 2 and k >= 256:
        for factor in (2, 4, 8):
            if k // factor >= 64:
                candidates.append(factor)
    return candidates


def reduce_schedule_space(device: DeviceSpec = RTX3090) -> list[ReduceSchedule]:
    """Enumerate reduction-template schedules (a dozen)."""
    space = []
    for block_size in (64, 128, 256, 512):
        for items in (1, 2, 4, 8):
            sched = ReduceSchedule(block_size=block_size, items_per_thread=items)
            if sched.is_valid(device):
                space.append(sched)
    return space
