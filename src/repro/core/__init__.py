"""The paper's primary contribution: task mappings, layouts, schedules, spaces."""
from .taskmap import (TaskMapping, RepeatTaskMapping, SpatialTaskMapping,
                      ComposedTaskMapping, CustomTaskMapping,
                      repeat, spatial, column_repeat, column_spatial, auto_map)

__all__ = [
    'TaskMapping', 'RepeatTaskMapping', 'SpatialTaskMapping',
    'ComposedTaskMapping', 'CustomTaskMapping',
    'repeat', 'spatial', 'column_repeat', 'column_spatial', 'auto_map',
]
