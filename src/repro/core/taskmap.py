"""Task mappings — the core abstraction of the task-mapping programming paradigm.

A *task mapping* (paper §5.1) assigns a grid of tasks to a set of workers and
fixes the order in which each worker executes its tasks:

* ``W_n = {0, 1, ..., n-1}`` is the worker set;
* ``T = {(t_0, ..., t_{m-1}) | 0 <= t_i < d_i}`` is the task domain with task
  shape ``d``;
* a mapping ``f`` sends each worker ``w`` to an *ordered list* of tasks.

Two basic mappings exist: :func:`repeat` (one worker executes a whole grid of
tasks sequentially) and :func:`spatial` (a grid of tasks is executed by the
same number of workers, one task each).  Mappings compose with ``*``
(the paper's ``∘``/``×``)::

    f3 = f1 * f2
    f3(w) = [t1 ⊙ d2 + t2  for t1 in f1(w // n2)  for t2 in f2(w % n2)]

Composition is associative but not commutative.

The same ``worker2task`` definition serves two purposes:

* given a **concrete** worker id (int), it enumerates that worker's tasks —
  used by the interpreter-free analyses and by tests;
* given a **symbolic** worker (an IR :class:`~repro.ir.expr.Expr`), it builds
  index expressions — used by the ``lower_task_mapping`` pass to turn
  ``ForTaskStmt`` into plain loops, exactly as in Figure 8 of the paper.
"""
from __future__ import annotations

import math
from typing import Callable, Sequence, Union

from ..ir.expr import Expr, ExprLike, convert

__all__ = [
    'TaskMapping', 'RepeatTaskMapping', 'SpatialTaskMapping',
    'ComposedTaskMapping', 'CustomTaskMapping',
    'repeat', 'spatial', 'column_repeat', 'column_spatial', 'auto_map',
]

Index = Union[int, Expr]


def _normalize_ranks(num_dims: int, ranks: Sequence[int] | None) -> tuple[int, ...]:
    if ranks is None:
        return tuple(range(num_dims))
    ranks = tuple(int(r) for r in ranks)
    if sorted(ranks) != list(range(num_dims)):
        raise ValueError(f'ranks must be a permutation of 0..{num_dims - 1}, got {ranks}')
    return ranks


def _is_symbolic(worker: Index) -> bool:
    return isinstance(worker, Expr)


class TaskMapping:
    """Base class for task mappings.

    Attributes
    ----------
    task_shape:
        Shape ``d`` of the task domain.
    num_workers:
        Size ``n`` of the worker set.
    """

    def __init__(self, task_shape: Sequence[int], num_workers: int):
        self.task_shape: tuple[int, ...] = tuple(int(d) for d in task_shape)
        if any(d <= 0 for d in self.task_shape):
            raise ValueError(f'task shape must be positive, got {self.task_shape}')
        self.num_workers = int(num_workers)
        if self.num_workers <= 0:
            raise ValueError('a task mapping needs at least one worker')

    # -- core interface ----------------------------------------------------

    def worker2task(self, worker: Index) -> list[tuple[Index, ...]]:
        """The ordered task list of ``worker`` (concrete int or symbolic Expr)."""
        raise NotImplementedError

    # -- derived queries -----------------------------------------------------

    @property
    def num_tasks(self) -> int:
        return math.prod(self.task_shape)

    @property
    def tasks_per_worker(self) -> int:
        """Number of tasks each worker executes (all mappings here are balanced)."""
        return self.num_tasks // self.num_workers

    def __call__(self, worker: Index) -> list[tuple[Index, ...]]:
        return self.worker2task(worker)

    def __mul__(self, other: 'TaskMapping') -> 'ComposedTaskMapping':
        return ComposedTaskMapping(self, other)

    def task2workers(self) -> dict[tuple[int, ...], list[int]]:
        """Inverse map: task -> workers executing it (for analyses and tests)."""
        inverse: dict[tuple[int, ...], list[int]] = {}
        for w in range(self.num_workers):
            for task in self.worker2task(w):
                inverse.setdefault(tuple(int(t) for t in task), []).append(w)
        return inverse

    def __repr__(self) -> str:
        return self._repr()

    def _repr(self) -> str:
        raise NotImplementedError


class RepeatTaskMapping(TaskMapping):
    """``repeat(d0, ..., dm)`` — a single worker executes the whole task grid.

    The execution order follows ``ranks``: the dimension with the largest rank
    varies fastest (row-major by default).
    """

    def __init__(self, task_shape: Sequence[int], ranks: Sequence[int] | None = None):
        super().__init__(task_shape, num_workers=1)
        self.ranks = _normalize_ranks(len(self.task_shape), ranks)

    def worker2task(self, worker: Index) -> list[tuple[Index, ...]]:
        # Enumeration does not depend on the worker (there is exactly one).
        num_dims = len(self.task_shape)
        order = sorted(range(num_dims), key=lambda i: self.ranks[i])  # most significant first
        tasks: list[tuple[Index, ...]] = []

        def rec(level: int, indices: dict[int, int]):
            if level == num_dims:
                tasks.append(tuple(indices[i] for i in range(num_dims)))
                return
            dim = order[level]
            for v in range(self.task_shape[dim]):
                indices[dim] = v
                rec(level + 1, indices)

        rec(0, {})
        return tasks

    def _repr(self) -> str:
        dims = ', '.join(str(d) for d in self.task_shape)
        if self.ranks != tuple(range(len(self.task_shape))):
            return f'repeat({dims}, ranks={list(self.ranks)})'
        return f'repeat({dims})'


class SpatialTaskMapping(TaskMapping):
    """``spatial(d0, ..., dm)`` — one task per worker.

    Worker ``w`` is de-linearized over the task shape in rank order (row-major
    by default, so the last dimension is contiguous across consecutive
    workers — the coalescing-friendly choice for memory loads).
    """

    def __init__(self, task_shape: Sequence[int], ranks: Sequence[int] | None = None):
        super().__init__(task_shape, num_workers=math.prod(task_shape))
        self.ranks = _normalize_ranks(len(self.task_shape), ranks)

    def worker2task(self, worker: Index) -> list[tuple[Index, ...]]:
        num_dims = len(self.task_shape)
        # strides[i] = product of extents of dims with rank greater than rank(i)
        strides = [1] * num_dims
        for i in range(num_dims):
            for j in range(num_dims):
                if self.ranks[j] > self.ranks[i]:
                    strides[i] *= self.task_shape[j]
        indices: list[Index] = []
        for i in range(num_dims):
            if _is_symbolic(worker):
                idx: Index = (worker // strides[i]) % self.task_shape[i]
            else:
                idx = (int(worker) // strides[i]) % self.task_shape[i]
            indices.append(idx)
        return [tuple(indices)]

    def _repr(self) -> str:
        dims = ', '.join(str(d) for d in self.task_shape)
        if self.ranks != tuple(range(len(self.task_shape))):
            return f'spatial({dims}, ranks={list(self.ranks)})'
        return f'spatial({dims})'


class ComposedTaskMapping(TaskMapping):
    """``f1 * f2`` — task-mapping composition (paper §5.1.2).

    The composed mapping has ``n1 * n2`` workers and task shape ``d1 ⊙ d2``::

        f3(w) = [t1 ⊙ d2 + t2 | t1 ∈ f1(w // n2), t2 ∈ f2(w % n2)]
    """

    def __init__(self, outer: TaskMapping, inner: TaskMapping):
        if len(outer.task_shape) != len(inner.task_shape):
            raise ValueError(
                f'cannot compose task mappings with different dimensionality: '
                f'{outer.task_shape} vs {inner.task_shape}'
            )
        shape = tuple(a * b for a, b in zip(outer.task_shape, inner.task_shape))
        super().__init__(shape, outer.num_workers * inner.num_workers)
        self.outer = outer
        self.inner = inner

    def worker2task(self, worker: Index) -> list[tuple[Index, ...]]:
        n2 = self.inner.num_workers
        if _is_symbolic(worker):
            outer_worker: Index = worker // n2
            inner_worker: Index = worker % n2
        else:
            outer_worker = int(worker) // n2
            inner_worker = int(worker) % n2
        d2 = self.inner.task_shape
        tasks: list[tuple[Index, ...]] = []
        for t1 in self.outer.worker2task(outer_worker):
            for t2 in self.inner.worker2task(inner_worker):
                tasks.append(tuple(a * d + b for a, d, b in zip(t1, d2, t2)))
        return tasks

    def _repr(self) -> str:
        return f'{self.outer!r} * {self.inner!r}'


class CustomTaskMapping(TaskMapping):
    """A user-defined task mapping (paper §5.1.1: "Hidet also allows developers
    to define custom task mappings by specifying the task shape, number of
    workers, and the mapping function").

    The mapping function must be *polymorphic*: it receives either an int or a
    symbolic worker expression and must use only ``//``, ``%``, ``+``, ``*``
    arithmetic so it works for both.
    """

    def __init__(self, task_shape: Sequence[int], num_workers: int,
                 func: Callable[[Index], list[tuple[Index, ...]]], name: str = 'custom'):
        super().__init__(task_shape, num_workers)
        self.func = func
        self.name = name

    def worker2task(self, worker: Index) -> list[tuple[Index, ...]]:
        tasks = self.func(worker)
        return [tuple(t) if isinstance(t, (tuple, list)) else (t,) for t in tasks]

    def _repr(self) -> str:
        dims = ', '.join(str(d) for d in self.task_shape)
        return f'{self.name}({dims})'


# ---------------------------------------------------------------------------
# constructors
# ---------------------------------------------------------------------------

def repeat(*task_shape: int, ranks: Sequence[int] | None = None) -> RepeatTaskMapping:
    """One worker executes the whole ``task_shape`` grid, row-major by default."""
    return RepeatTaskMapping(task_shape, ranks)


def spatial(*task_shape: int, ranks: Sequence[int] | None = None) -> SpatialTaskMapping:
    """``prod(task_shape)`` workers execute one task each, row-major by default."""
    return SpatialTaskMapping(task_shape, ranks)


def column_repeat(*task_shape: int) -> RepeatTaskMapping:
    """Like :func:`repeat` but iterating the first dimension fastest."""
    return RepeatTaskMapping(task_shape, ranks=tuple(reversed(range(len(task_shape)))))


def column_spatial(*task_shape: int) -> SpatialTaskMapping:
    """Like :func:`spatial` but de-linearizing the first dimension fastest."""
    return SpatialTaskMapping(task_shape, ranks=tuple(reversed(range(len(task_shape)))))


def auto_map(*task_shape: int, workers: int) -> TaskMapping:
    """Cover ``task_shape`` with ``workers`` workers: ``repeat(r) * spatial(s)``.

    Workers are assigned to the innermost dimensions first so that consecutive
    workers touch contiguous addresses (coalesced global-memory access), and
    remaining extent becomes per-worker repeats.  Used by the matmul template
    to derive cooperative-loading mappings like ``repeat(4, 1) * spatial(16, 8)``
    from Figure 8.
    """
    total = math.prod(task_shape)
    if total % workers != 0:
        raise ValueError(f'cannot evenly map {task_shape} tasks to {workers} workers')
    spatial_dims = [1] * len(task_shape)
    remaining = workers
    for i in reversed(range(len(task_shape))):
        take = math.gcd(task_shape[i], remaining)
        spatial_dims[i] = take
        remaining //= take
    if remaining != 1:
        raise ValueError(
            f'cannot factor {workers} workers over task shape {task_shape}; '
            f'left with factor {remaining}'
        )
    repeat_dims = [d // s for d, s in zip(task_shape, spatial_dims)]
    return RepeatTaskMapping(repeat_dims) * SpatialTaskMapping(spatial_dims)
