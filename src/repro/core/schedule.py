"""Schedule configurations for template-based scheduling (paper §5.1.3).

A :class:`MatmulSchedule` parameterizes the matmul template's task mappings.
The block tile decomposes hierarchically, mirroring the paper's running
example ``spatial(4, 2) * repeat(2, 2) * spatial(4, 8) * repeat(4, 4)``:

* ``block_warps`` — the spatial grid of warps in the thread block;
* ``warp_outer`` — how many times each warp's tile repeats;
* ``thread_layout`` — the spatial grid of the 32 lanes inside a warp;
* ``thread_tile`` — the per-thread register tile (repeat).

All tile sizes derive from hardware resources, never from input extents:
boundary tiles use predicated loads/stores, so one schedule serves every
input size (§4.3, hardware-centric schedule space).
"""
from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..gpusim.device import DeviceSpec, RTX3090

__all__ = ['MatmulSchedule', 'ReduceSchedule']


@dataclass(frozen=True)
class MatmulSchedule:
    block_warps: tuple[int, int] = (2, 2)      # spatial: warps in block (m, n)
    warp_outer: tuple[int, int] = (2, 2)       # repeat: warp tile repetitions
    thread_layout: tuple[int, int] = (4, 8)    # spatial: lanes in warp (m, n)
    thread_tile: tuple[int, int] = (4, 4)      # repeat: per-thread C elements
    block_k: int = 8
    double_buffer: bool = True
    split_k: int = 1

    # -- derived geometry -----------------------------------------------------

    @property
    def block_m(self) -> int:
        return (self.block_warps[0] * self.warp_outer[0]
                * self.thread_layout[0] * self.thread_tile[0])

    @property
    def block_n(self) -> int:
        return (self.block_warps[1] * self.warp_outer[1]
                * self.thread_layout[1] * self.thread_tile[1])

    @property
    def num_warps(self) -> int:
        return self.block_warps[0] * self.block_warps[1]

    @property
    def threads(self) -> int:
        return self.num_warps * 32

    @property
    def smem_stages(self) -> int:
        return 2 if self.double_buffer else 1

    @property
    def smem_bytes(self) -> int:
        tile_floats = self.block_m * self.block_k + self.block_k * self.block_n
        return tile_floats * 4 * self.smem_stages

    @property
    def regs_per_thread(self) -> int:
        """Estimated register footprint per thread."""
        tm, tn = self.thread_tile
        wom, won = self.warp_outer
        accum = wom * tm * won * tn
        frags = wom * tm + won * tn
        staging = 0
        if self.double_buffer:
            tile_floats = self.block_m * self.block_k + self.block_k * self.block_n
            staging = tile_floats // self.threads
        return accum + frags + staging + 24  # +24 for indices/pointers

    # -- validity ---------------------------------------------------------------

    def is_valid(self, device: DeviceSpec = RTX3090) -> bool:
        """Can this schedule's kernel launch on the device at all?"""
        if self.thread_layout[0] * self.thread_layout[1] != 32:
            return False
        if self.threads > device.max_threads_per_block or self.threads < 32:
            return False
        if self.smem_bytes > device.max_shared_memory_per_block:
            return False
        if self.regs_per_thread > device.max_registers_per_thread:
            return False
        # cooperative loading must evenly cover both smem tiles
        if (self.block_m * self.block_k) % self.threads != 0:
            return False
        if (self.block_k * self.block_n) % self.threads != 0:
            return False
        if self.split_k < 1:
            return False
        return True

    def grid(self, m: int, n: int) -> tuple[int, int, int]:
        """Launch grid for a problem of size m×n (x: n-tiles, y: m-tiles, z: k-split)."""
        return (math.ceil(n / self.block_n), math.ceil(m / self.block_m), self.split_k)

    def short_repr(self) -> str:
        bm, bn, bk = self.block_m, self.block_n, self.block_k
        tag = 'db' if self.double_buffer else 'sb'
        sk = f',k{self.split_k}' if self.split_k > 1 else ''
        return (f'{bm}x{bn}x{bk}.w{self.block_warps[0]}x{self.block_warps[1]}'
                f'.t{self.thread_tile[0]}x{self.thread_tile[1]}.{tag}{sk}')


@dataclass(frozen=True)
class ReduceSchedule:
    """Schedule for the reduction template: one block per output element group."""

    block_size: int = 256          # threads per block
    items_per_thread: int = 4      # sequential reduction depth before the tree

    @property
    def tile(self) -> int:
        return self.block_size * self.items_per_thread

    def is_valid(self, device: DeviceSpec = RTX3090) -> bool:
        return (32 <= self.block_size <= device.max_threads_per_block
                and self.block_size % 32 == 0
                and (self.block_size & (self.block_size - 1)) == 0  # power of two tree
                and self.items_per_thread >= 1)
