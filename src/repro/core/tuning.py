"""Exhaustive tuning over hardware-centric schedule spaces (paper §4.3, §5.1.3).

Because the space is small (~10² schedules) and input-size independent, Hidet
"simply enumerates all schedules" — no cost model, no evolutionary search.
Measurement here is the analytic GPU model; the simulated clock accounts for
the compile+measure cost that Figure 17 reports (the paper's testbed
compiles candidates in parallel on a 24-thread CPU).
"""
from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional, Sequence

from .schedule import MatmulSchedule
from .space import matmul_schedule_space, split_k_candidates
from ..gpusim.clock import SimulatedClock, TuningCosts
from ..gpusim.device import DeviceSpec, RTX3090
from ..gpusim.perfmodel import PerfModel
from ..sched import matmul_template

__all__ = ['TuningResult', 'MatmulTuner', 'HIDET_TUNING_COSTS']

#: per-candidate costs of Hidet's tuning flow: candidates are generated and
#: compiled in parallel (24-thread CPU on the paper's testbed), then measured
#: back-to-back on the GPU.
HIDET_TUNING_COSTS = TuningCosts(
    compile_seconds=2.0, measure_seconds=0.025, parallel_compile_workers=24)


@dataclass
class TuningResult:
    best_schedule: MatmulSchedule
    best_latency: float                 # seconds
    num_candidates: int
    tuning_seconds: float               # 0.0 when served from the tuner cache
    latencies: dict[MatmulSchedule, float]
    #: whether split-k factors were actually enumerated for this problem
    split_k_tried: bool = True
    #: why split-k enumeration was skipped (None when it ran or was not requested)
    split_k_disabled_reason: Optional[str] = None

    @property
    def best_latency_ms(self) -> float:
        return self.best_latency * 1e3


class MatmulTuner:
    """Enumerate-and-measure tuner for the matmul template."""

    def __init__(self, device: DeviceSpec = RTX3090,
                 costs: TuningCosts = HIDET_TUNING_COSTS,
                 clock: Optional[SimulatedClock] = None):
        self.device = device
        self.costs = costs
        self.clock = clock if clock is not None else SimulatedClock()
        self.model = PerfModel(device)
        self._cache: dict[tuple, TuningResult] = {}

    def measure(self, m: int, n: int, k: int, sched: MatmulSchedule,
                extra_read_bytes: float = 0.0, extra_write_bytes: float = 0.0,
                batch: int = 1) -> float:
        """Modeled latency (seconds) of all kernels the schedule launches."""
        stats = matmul_template.matmul_stats(
            m, n, k, sched, batch=batch,
            extra_read_bytes=extra_read_bytes, extra_write_bytes=extra_write_bytes)
        return sum(self.model.latency(s) for s in stats)

    def tune(self, m: int, n: int, k: int,
             space: Optional[Sequence[MatmulSchedule]] = None,
             try_split_k: bool = True,
             extra_read_bytes: float = 0.0,
             extra_write_bytes: float = 0.0,
             batch: int = 1,
             precompiled: bool = False) -> TuningResult:
        """Find the best schedule for an ``m×n×k`` problem by full enumeration.

        Results are cached per problem key; a cache hit returns an equal
        result whose ``tuning_seconds`` is 0.0 (no clock time is charged —
        reporting the original tuning time would double-count it).

        ``precompiled=True`` declares that this problem family's candidate
        kernels were already compiled for another size (the hardware-centric
        space is input-size independent, §4.3, so the candidate set is
        identical): only the measurements are charged, not the compile
        batch.  The chosen schedule is the true optimum either way.  The
        split-k cross product can differ slightly between sizes
        (``split_k_candidates`` depends on ``m``); those few size-specific
        variants ride the family's compile budget rather than being
        charged separately — a deliberate approximation.

        Split-k (paper §6.3.4) is only enumerated for un-batched problems:
        splitting the reduction exists to manufacture extra thread blocks
        when the ``m×n`` output grid alone cannot saturate the SMs, but a
        batched matmul already multiplies the grid by ``batch``, and split-k
        would add a second (reduce) kernel plus partial-sum traffic per
        batch element for no occupancy gain.  The decision is recorded in
        ``TuningResult.split_k_tried`` / ``split_k_disabled_reason`` so
        experiments can observe it instead of inferring it from the absence
        of split-k candidates.
        """
        split_k_reason: Optional[str] = None
        if try_split_k and batch != 1:
            try_split_k = False
            split_k_reason = (
                f'batch={batch}: batching already multiplies the launch grid, '
                f'so split-k cannot add useful parallelism (§6.3.4)')
        # key on the *effective* flag: an explicit opt-out and a batch-forced
        # disable enumerate the identical candidate space, so they share one
        # enumeration (and one clock charge); each caller's own split-k
        # decision metadata is restored on the way out
        key = (m, n, k, batch, None if space is None else tuple(space),
               try_split_k, round(extra_read_bytes), round(extra_write_bytes))
        if key in self._cache:
            return replace(self._cache[key], tuning_seconds=0.0,
                           split_k_tried=try_split_k,
                           split_k_disabled_reason=split_k_reason)

        if space is None:
            space = matmul_schedule_space(self.device)
        start = self.clock.elapsed_seconds

        latencies: dict[MatmulSchedule, float] = {}
        for sched in space:
            latencies[sched] = self.measure(m, n, k, sched,
                                            extra_read_bytes, extra_write_bytes, batch)

        # parallel-k variants (paper §6.3.4): for workloads whose output grid
        # cannot saturate the SMs, the k-split factors become an extra space
        # dimension.  A schedule that is mediocre without split-k can be the
        # global best with it, so the whole cross product is enumerated.
        if try_split_k:
            factors = [f for f in split_k_candidates(m, n, k, self.device) if f != 1]
            for base in list(latencies):
                for factor in factors:
                    cand = replace(base, split_k=factor)
                    if cand.is_valid(self.device) and cand not in latencies:
                        latencies[cand] = self.measure(
                            m, n, k, cand, extra_read_bytes, extra_write_bytes, batch)

        num_candidates = len(latencies)
        if not precompiled:
            self.clock.charge_compile_batch(self.costs, num_candidates,
                                            label=f'compile matmul {m}x{n}x{k}')
        self.clock.charge_measurements(self.costs, num_candidates,
                                       label=f'measure matmul {m}x{n}x{k}')

        best = min(latencies, key=lambda s: latencies[s])
        result = TuningResult(
            best_schedule=best,
            best_latency=latencies[best],
            num_candidates=num_candidates,
            tuning_seconds=self.clock.elapsed_seconds - start,
            latencies=latencies,
            split_k_tried=try_split_k,
            split_k_disabled_reason=split_k_reason,
        )
        self._cache[key] = result
        return result

    def retarget(self, m: int, n: int, k: int, sched: MatmulSchedule,
                 extra_read_bytes: float = 0.0, extra_write_bytes: float = 0.0,
                 batch: int = 1) -> TuningResult:
        """Adopt a schedule tuned on a *different* device (device-family
        transfer): compile that one candidate for the local architecture and
        measure it, instead of enumerating the space.

        Charges one compile plus one measurement — the foreign kernel must be
        rebuilt for the local arch, but the enumerate-compile-measure bill of
        a full tune is skipped.  Unlike a size-family transfer the adopted
        schedule is not guaranteed optimal for this device; the caller is
        expected to have validated it (``sched.is_valid(local_device)``)
        before retargeting.
        """
        start = self.clock.elapsed_seconds
        latency = self.measure(m, n, k, sched,
                               extra_read_bytes, extra_write_bytes, batch)
        self.clock.charge_compile_batch(self.costs, 1,
                                        label=f'compile retarget {m}x{n}x{k}')
        self.clock.charge_measurements(self.costs, 1,
                                       label=f'measure retarget {m}x{n}x{k}')
        return TuningResult(
            best_schedule=sched,
            best_latency=latency,
            num_candidates=1,
            tuning_seconds=self.clock.elapsed_seconds - start,
            latencies={sched: latency},
            split_k_tried=False,
            split_k_disabled_reason='adopted a foreign-device schedule '
                                    '(device-family transfer)',
        )
