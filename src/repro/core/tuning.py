"""Exhaustive tuning over hardware-centric schedule spaces (paper §4.3, §5.1.3).

Because the space is small (~10² schedules) and input-size independent, Hidet
"simply enumerates all schedules" — no cost model, no evolutionary search.
Measurement here is the analytic GPU model; the simulated clock accounts for
the compile+measure cost that Figure 17 reports (the paper's testbed
compiles candidates in parallel on a 24-thread CPU).

PR 8 adds an optional learned shortcut in the spirit of TLP / "Learning to
Optimize Tensor Programs": pass a cost model (duck-typed — see
:class:`repro.tune.RidgeCostModel`) and the tuner ranks the enumerated
candidates by predicted latency, compiling and measuring only the predicted
top-k.  The shortcut is *calibrated*: an underfit model falls back to full
enumeration up front, and after measuring the top-k the predictions are
checked against the measurements — a miscalibrated model escalates to
measuring the remaining candidates, so a bad model costs wasted ranking, not
a bad schedule.
"""
from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional, Sequence

from .schedule import MatmulSchedule
from .space import matmul_schedule_space, split_k_candidates
from ..gpusim.clock import SimulatedClock, TuningCosts
from ..gpusim.device import DeviceSpec, RTX3090
from ..gpusim.perfmodel import PerfModel
from ..sched import matmul_template

__all__ = ['TuningResult', 'MatmulTuner', 'HIDET_TUNING_COSTS']

#: per-candidate costs of Hidet's tuning flow: candidates are generated and
#: compiled in parallel (24-thread CPU on the paper's testbed), then measured
#: back-to-back on the GPU.
HIDET_TUNING_COSTS = TuningCosts(
    compile_seconds=2.0, measure_seconds=0.025, parallel_compile_workers=24)


@dataclass
class TuningResult:
    best_schedule: MatmulSchedule
    best_latency: float                 # seconds
    num_candidates: int
    tuning_seconds: float               # 0.0 when served from the tuner cache
    latencies: dict[MatmulSchedule, float]
    #: whether split-k factors were actually enumerated for this problem
    split_k_tried: bool = True
    #: why split-k enumeration was skipped (None when it ran or was not requested)
    split_k_disabled_reason: Optional[str] = None
    #: candidates actually measured (== num_candidates for exhaustive tunes,
    #: the predicted top-k for cost-model-guided ones); 0 on a tuner-cache hit
    num_measured: int = 0
    #: whether a calibrated cost model pruned the measurement set
    used_cost_model: bool = False
    #: why the cost-model shortcut was not (fully) taken: None when it was,
    #: 'underfit: ...' when the model was not ready, 'miscalibrated: ...'
    #: when the gate escalated to full measurement after the top-k
    fallback_reason: Optional[str] = None
    #: candidates the static analyzer rejected before measurement (0 unless
    #: ``tune(analyzer=...)`` was given a candidate filter)
    analysis_rejected: int = 0

    @property
    def best_latency_ms(self) -> float:
        return self.best_latency * 1e3


class MatmulTuner:
    """Enumerate-and-measure tuner for the matmul template."""

    def __init__(self, device: DeviceSpec = RTX3090,
                 costs: TuningCosts = HIDET_TUNING_COSTS,
                 clock: Optional[SimulatedClock] = None):
        self.device = device
        self.costs = costs
        self.clock = clock if clock is not None else SimulatedClock()
        self.model = PerfModel(device)
        self._cache: dict[tuple, TuningResult] = {}
        # lifetime accounting (drives the tuning.measurements_per_task bench
        # metric and the CompileReport counters)
        #: candidate measurements actually charged to the clock
        self.measurements_charged = 0
        #: problems tuned (tuner-cache hits excluded — nothing was charged)
        self.tasks_tuned = 0
        #: problems where a calibrated cost model pruned the measurement set
        self.ranked_tasks = 0
        #: problems where the cost-model shortcut fell back to full
        #: measurement (underfit model or failed calibration gate)
        self.fallback_tasks = 0
        #: candidates screened by a static analyzer before measurement, and
        #: how many of those were rejected as unsafe
        self.analysis_checked = 0
        self.analysis_rejected = 0

    def measure(self, m: int, n: int, k: int, sched: MatmulSchedule,
                extra_read_bytes: float = 0.0, extra_write_bytes: float = 0.0,
                batch: int = 1) -> float:
        """Modeled latency (seconds) of all kernels the schedule launches."""
        stats = matmul_template.matmul_stats(
            m, n, k, sched, batch=batch,
            extra_read_bytes=extra_read_bytes, extra_write_bytes=extra_write_bytes)
        return sum(self.model.latency(s) for s in stats)

    def candidates(self, m: int, n: int, k: int,
                   space: Optional[Sequence[MatmulSchedule]] = None,
                   try_split_k: bool = True,
                   batch: int = 1) -> list[MatmulSchedule]:
        """Enumerate the full candidate list for a problem, without
        measuring: the base space plus the valid split-k variants (paper
        §6.3.4 — batching disables split-k, see :meth:`tune`)."""
        if space is None:
            space = matmul_schedule_space(self.device)
        cands = list(space)
        if try_split_k and batch == 1:
            factors = [f for f in split_k_candidates(m, n, k, self.device)
                       if f != 1]
            seen = set(cands)
            for base in space:
                for factor in factors:
                    variant = replace(base, split_k=factor)
                    if variant.is_valid(self.device) and variant not in seen:
                        seen.add(variant)
                        cands.append(variant)
        return cands

    def tune(self, m: int, n: int, k: int,
             space: Optional[Sequence[MatmulSchedule]] = None,
             try_split_k: bool = True,
             extra_read_bytes: float = 0.0,
             extra_write_bytes: float = 0.0,
             batch: int = 1,
             precompiled: bool = False,
             cost_model=None,
             analyzer=None) -> TuningResult:
        """Find the best schedule for an ``m×n×k`` problem.

        By default the candidate set (base space × split-k variants) is
        enumerated exhaustively.  Results are cached per problem key; a
        cache hit returns an equal result whose ``tuning_seconds`` is 0.0
        (no clock time is charged — reporting the original tuning time
        would double-count it).

        ``precompiled=True`` declares that this problem family's candidate
        kernels were already compiled for another size (the hardware-centric
        space is input-size independent, §4.3, so the candidate set is
        identical): only the measurements are charged, not the compile
        batch.  The chosen schedule is the true optimum either way.  The
        split-k cross product can differ slightly between sizes
        (``split_k_candidates`` depends on ``m``); those few size-specific
        variants ride the family's compile budget rather than being
        charged separately — a deliberate approximation.

        ``cost_model`` (duck-typed; see :class:`repro.tune.RidgeCostModel`)
        enables the learned shortcut: ``cost_model.rank(...)`` orders the
        candidates by predicted latency and only the top
        ``cost_model.top_k`` are compiled+measured.  Two calibration guards
        keep the shortcut honest: ``rank`` returns ``None`` while the model
        is underfit (full enumeration, ``fallback_reason='underfit: ...'``),
        and after measuring the top-k the mean absolute log-space error of
        the predictions is checked against
        ``cost_model.calibration_tolerance`` — a miss escalates to
        measuring every remaining candidate
        (``fallback_reason='miscalibrated: ...'``), so the chosen schedule
        is then the exhaustive optimum.

        ``analyzer`` (duck-typed; see
        :class:`repro.analysis.ScheduleAnalyzer`) screens every enumerated
        candidate *before* measurement: ``analyzer.reject(m, n, k, sched,
        batch)`` returns a diagnostic for statically unsafe schedules (out
        of bounds, coverage holes, shared-memory races), which are dropped
        from the candidate set without charging compile or measure time.
        The screen never changes the winner on a healthy space — a rejected
        candidate would have been memory-unsafe on real hardware, so it was
        never a legitimate optimum.

        Split-k (paper §6.3.4) is only enumerated for un-batched problems:
        splitting the reduction exists to manufacture extra thread blocks
        when the ``m×n`` output grid alone cannot saturate the SMs, but a
        batched matmul already multiplies the grid by ``batch``, and split-k
        would add a second (reduce) kernel plus partial-sum traffic per
        batch element for no occupancy gain.  The decision is recorded in
        ``TuningResult.split_k_tried`` / ``split_k_disabled_reason`` so
        experiments can observe it instead of inferring it from the absence
        of split-k candidates.
        """
        split_k_reason: Optional[str] = None
        if try_split_k and batch != 1:
            try_split_k = False
            split_k_reason = (
                f'batch={batch}: batching already multiplies the launch grid, '
                f'so split-k cannot add useful parallelism (§6.3.4)')
        # key on the *effective* flag: an explicit opt-out and a batch-forced
        # disable enumerate the identical candidate space, so they share one
        # enumeration (and one clock charge); each caller's own split-k
        # decision metadata is restored on the way out.  Guided and
        # exhaustive tunes key separately: a guided result is not
        # necessarily the exhaustive optimum.
        key = (m, n, k, batch, None if space is None else tuple(space),
               try_split_k, round(extra_read_bytes), round(extra_write_bytes),
               cost_model is not None,
               None if analyzer is None else id(analyzer))
        if key in self._cache:
            return replace(self._cache[key], tuning_seconds=0.0,
                           num_measured=0,
                           split_k_tried=try_split_k,
                           split_k_disabled_reason=split_k_reason)

        start = self.clock.elapsed_seconds
        cands = self.candidates(m, n, k, space=space,
                                try_split_k=try_split_k, batch=batch)
        analysis_rejected = 0
        if analyzer is not None:
            kept = []
            reasons = []
            for sched in cands:
                reason = analyzer.reject(m, n, k, sched, batch=batch)
                if reason is None:
                    kept.append(sched)
                else:
                    reasons.append((sched, reason))
            self.analysis_checked += len(cands)
            analysis_rejected = len(reasons)
            self.analysis_rejected += analysis_rejected
            if not kept:
                raise RuntimeError(
                    f'matmul {m}x{n}x{k}: the static analyzer rejected every '
                    f'candidate, e.g. {reasons[0][1]}')
            cands = kept
        num_candidates = len(cands)

        def measure_into(latencies, schedules):
            for sched in schedules:
                if sched not in latencies:
                    latencies[sched] = self.measure(
                        m, n, k, sched, extra_read_bytes, extra_write_bytes,
                        batch)

        used_cost_model = False
        fallback_reason: Optional[str] = None
        latencies: dict[MatmulSchedule, float] = {}
        ranked = None
        if cost_model is not None:
            ranked = cost_model.rank(m, n, k, cands, batch=batch,
                                     extra_read_bytes=extra_read_bytes,
                                     extra_write_bytes=extra_write_bytes)
            if ranked is None:
                fallback_reason = ('underfit: cost model not calibrated, '
                                   'measuring the full candidate set')
                self.fallback_tasks += 1
        if ranked is not None:
            used_cost_model = True
            self.ranked_tasks += 1
            if self.costs.search_overhead_seconds > 0.0:
                self.clock.charge(f'rank matmul {m}x{n}x{k}',
                                  self.costs.search_overhead_seconds)
            ordered = [sched for sched, _ in ranked]
            predicted = dict(ranked)
            top_k = max(1, min(int(cost_model.top_k), num_candidates))
            measure_into(latencies, ordered[:top_k])
            # calibration gate: the predictions that chose the top-k must
            # agree with what measurement says about those very candidates
            err = sum(abs(math.log(latencies[s]) - math.log(predicted[s]))
                      for s in ordered[:top_k]) / top_k
            tolerance = float(cost_model.calibration_tolerance)
            if err > tolerance:
                fallback_reason = (
                    f'miscalibrated: mean |Δlog latency| {err:.3f} > '
                    f'{tolerance:.3f} on the measured top-{top_k}, '
                    f'escalating to full measurement')
                self.fallback_tasks += 1
                measure_into(latencies, ordered[top_k:])
        else:
            measure_into(latencies, cands)

        num_measured = len(latencies)
        if not precompiled:
            self.clock.charge_compile_batch(self.costs, num_measured,
                                            label=f'compile matmul {m}x{n}x{k}')
        self.clock.charge_measurements(self.costs, num_measured,
                                       label=f'measure matmul {m}x{n}x{k}')
        self.measurements_charged += num_measured
        self.tasks_tuned += 1

        best = min(latencies, key=lambda s: latencies[s])
        result = TuningResult(
            best_schedule=best,
            best_latency=latencies[best],
            num_candidates=num_candidates,
            tuning_seconds=self.clock.elapsed_seconds - start,
            latencies=latencies,
            split_k_tried=try_split_k,
            split_k_disabled_reason=split_k_reason,
            num_measured=num_measured,
            used_cost_model=used_cost_model,
            fallback_reason=fallback_reason,
            analysis_rejected=analysis_rejected,
        )
        self._cache[key] = result
        return result

    def retarget(self, m: int, n: int, k: int, sched: MatmulSchedule,
                 extra_read_bytes: float = 0.0, extra_write_bytes: float = 0.0,
                 batch: int = 1) -> TuningResult:
        """Adopt a schedule tuned on a *different* device (device-family
        transfer): compile that one candidate for the local architecture and
        measure it, instead of enumerating the space.

        Charges one compile plus one measurement — the foreign kernel must be
        rebuilt for the local arch, but the enumerate-compile-measure bill of
        a full tune is skipped.  Unlike a size-family transfer the adopted
        schedule is not guaranteed optimal for this device; the caller is
        expected to have validated it (``sched.is_valid(local_device)``)
        before retargeting.
        """
        start = self.clock.elapsed_seconds
        latency = self.measure(m, n, k, sched,
                               extra_read_bytes, extra_write_bytes, batch)
        self.clock.charge_compile_batch(self.costs, 1,
                                        label=f'compile retarget {m}x{n}x{k}')
        self.clock.charge_measurements(self.costs, 1,
                                       label=f'measure retarget {m}x{n}x{k}')
        self.measurements_charged += 1
        self.tasks_tuned += 1
        return TuningResult(
            best_schedule=sched,
            best_latency=latency,
            num_candidates=1,
            tuning_seconds=self.clock.elapsed_seconds - start,
            latencies={sched: latency},
            split_k_tried=False,
            split_k_disabled_reason='adopted a foreign-device schedule '
                                    '(device-family transfer)',
            num_measured=1,
        )
