"""Legacy setup shim.

The execution environment is offline with an old setuptools and no ``wheel``
package, so PEP-517 editable installs fail with "invalid command
'bdist_wheel'".  This shim lets ``pip install -e . --no-build-isolation``
fall back to the legacy ``setup.py develop`` path.
"""
from setuptools import setup, find_packages

setup(
    name='repro',
    version='0.1.0',
    package_dir={'': 'src'},
    packages=find_packages(where='src'),
    python_requires='>=3.10',
    install_requires=['numpy'],
)
