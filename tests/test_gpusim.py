"""The GPU simulator substrate: occupancy, latency model, tuning clock."""
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.gpusim import (A100, RTX3090, KernelStats, ModelParams, PerfModel,
                          SimulatedClock, TuningCosts, compute_occupancy,
                          estimate_latency)
from repro.gpusim.stats import OVERLAP_DOUBLE_BUFFER, OVERLAP_NONE


def _stats(**kwargs):
    base = dict(name='k', grid_blocks=256, threads_per_block=256,
                flops=1e9, gmem_read_bytes=1e7, gmem_write_bytes=1e6,
                smem_bytes_per_block=16 * 1024, regs_per_thread=64)
    base.update(kwargs)
    return KernelStats(**base)


class TestOccupancy:
    def test_thread_limited(self):
        occ = compute_occupancy(RTX3090, 512, 0, 32)
        assert occ.resident_blocks_per_sm == 3           # 1536 / 512
        assert occ.limited_by == 'threads'

    def test_shared_memory_limited(self):
        occ = compute_occupancy(RTX3090, 128, 40 * 1024, 32)
        assert occ.limited_by == 'shared_memory'
        assert occ.resident_blocks_per_sm == 2           # 100KB / 40KB

    def test_register_limited(self):
        occ = compute_occupancy(RTX3090, 256, 0, 128)
        assert occ.limited_by == 'registers'
        assert occ.resident_blocks_per_sm == 2           # 65536/(128*256)

    def test_unlaunchable(self):
        assert not compute_occupancy(RTX3090, 2048, 0, 32).viable
        assert not compute_occupancy(RTX3090, 128, 64 * 1024, 32).viable

    def test_occupancy_fraction(self):
        occ = compute_occupancy(RTX3090, 256, 0, 32)
        assert occ.resident_warps_per_sm == occ.resident_blocks_per_sm * 8
        assert 0 < occ.occupancy <= 1


class TestPerfModel:
    def test_more_flops_more_time(self):
        model = PerfModel(RTX3090)
        fast = model.latency(_stats(flops=1e9))
        slow = model.latency(_stats(flops=4e9))
        assert slow > fast

    def test_double_buffering_helps_balanced_kernels(self):
        """Overlap only matters when compute and memory are comparable (§3.1)."""
        model = PerfModel(RTX3090)
        balanced = dict(flops=2e9, gmem_read_bytes=6e7)
        sb = model.latency(_stats(overlap=OVERLAP_NONE, **balanced))
        db = model.latency(_stats(overlap=OVERLAP_DOUBLE_BUFFER, **balanced))
        assert db < sb
        assert sb / db > 1.2

    def test_wave_quantization(self):
        """Latency jumps at the resident-capacity boundary (Figure 20)."""
        model = PerfModel(RTX3090)
        est = model.estimate(_stats())
        capacity = est.resident_blocks_per_sm * RTX3090.num_sms
        one_wave = model.latency(_stats(grid_blocks=capacity))
        just_over = model.latency(_stats(grid_blocks=capacity + 1))
        assert just_over > one_wave * 1.5

    def test_underfilled_gpu_penalized(self):
        model = PerfModel(RTX3090)
        few = model.latency(_stats(grid_blocks=8))
        many = model.latency(_stats(grid_blocks=8 * 82, flops=1e9 * 82,
                                    gmem_read_bytes=1e7 * 82))
        # 82x the work on 82x the blocks takes far less than 82x the time
        assert many < few * 82 * 0.5

    def test_register_spill_penalty(self):
        model = PerfModel(RTX3090)
        ok = model.latency(_stats(regs_per_thread=255, threads_per_block=64))
        spilled = model.latency(_stats(regs_per_thread=300, threads_per_block=64))
        assert spilled > ok

    def test_launch_overhead_floor(self):
        tiny = _stats(grid_blocks=1, threads_per_block=32, flops=1.0,
                      gmem_read_bytes=4.0, gmem_write_bytes=4.0,
                      smem_bytes_per_block=0, regs_per_thread=16)
        assert estimate_latency(tiny) >= RTX3090.kernel_launch_overhead

    def test_unlaunchable_raises(self):
        with pytest.raises(ValueError, match='cannot launch'):
            estimate_latency(_stats(smem_bytes_per_block=64 * 1024))

    def test_ilp_lowers_occupancy_demand(self):
        model = PerfModel(RTX3090)
        low_ilp = model.latency(_stats(threads_per_block=64, grid_blocks=82, ilp=1.0))
        high_ilp = model.latency(_stats(threads_per_block=64, grid_blocks=82, ilp=16.0))
        assert high_ilp < low_ilp

    def test_devices_differ(self):
        s = _stats(gmem_read_bytes=5e8)   # memory bound
        assert estimate_latency(s, A100) < estimate_latency(s, RTX3090)

    @given(st.floats(0.0, 1.0), st.floats(0.0, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_more_overlap_never_slower(self, a, b):
        lo, hi = sorted([a, b])
        model = PerfModel(RTX3090)
        t_lo = model.latency(_stats(overlap=lo, flops=2e9, gmem_read_bytes=6e7))
        t_hi = model.latency(_stats(overlap=hi, flops=2e9, gmem_read_bytes=6e7))
        assert t_hi <= t_lo + 1e-12


class TestStatsValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            _stats(grid_blocks=0)
        with pytest.raises(ValueError):
            _stats(overlap=1.5)
        with pytest.raises(ValueError):
            _stats(coalesce_factor=0.0)

    def test_scaled(self):
        s = _stats().scaled(4)
        assert s.grid_blocks == 1024 and s.flops == 4e9

    def test_bound_classification(self):
        model = PerfModel(RTX3090)
        est = model.estimate(_stats(flops=1e12, gmem_read_bytes=1e3))
        assert est.bound == 'compute'


class TestSimulatedClock:
    def test_charges_accumulate(self):
        clock = SimulatedClock()
        clock.charge('a', 10.0)
        clock.charge('a', 5.0)
        clock.charge('b', 1.0)
        assert clock.elapsed_seconds == 16.0
        assert clock.summary() == {'a': 15.0, 'b': 1.0}

    def test_parallel_compile_batches(self):
        clock = SimulatedClock()
        costs = TuningCosts(compile_seconds=2.0, measure_seconds=0.1,
                            parallel_compile_workers=8)
        clock.charge_compile_batch(costs, 20)     # ceil(20/8)=3 batches
        assert clock.elapsed_seconds == 6.0
        clock.charge_measurements(costs, 20)
        assert clock.elapsed_seconds == 8.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock().charge('x', -1.0)
