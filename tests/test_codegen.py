"""CUDA C code generation: structure of the emitted kernels."""
import numpy as np
import pytest

from repro.backend.codegen import generate_cuda, generate_cuda_module
from repro.core.schedule import MatmulSchedule
from repro.ir import FunctionBuilder, f32, if_then_else, thread_idx
from repro.ir.primitives import atomic_add
from repro.sched.matmul_template import build_matmul_module

SMALL = MatmulSchedule(block_warps=(1, 1), warp_outer=(1, 1), thread_layout=(4, 8),
                       thread_tile=(4, 4), block_k=8, double_buffer=False)
SMALL_DB = MatmulSchedule(block_warps=(1, 1), warp_outer=(1, 1), thread_layout=(4, 8),
                          thread_tile=(4, 4), block_k=8, double_buffer=True)


class TestBasicEmission:
    def test_signature_and_launch_comment(self):
        fb = FunctionBuilder('my_kernel', grid_dim=(4, 2), block_dim=128)
        a = fb.tensor_param('A', f32, [8])
        fb.store(a, [0], 1.0)
        src = generate_cuda(fb.finish())
        assert '__global__ void my_kernel(float* __restrict__ A)' in src
        assert 'grid dim: (4, 2, 1), block dim: (128, 1, 1)' in src

    def test_global_tensors_linearized(self):
        fb = FunctionBuilder('k', block_dim=1)
        a = fb.tensor_param('A', f32, [4, 8])
        fb.store(a, [2, 3], 0.0)
        src = generate_cuda(fb.finish())
        assert 'A[2 * 8 + 3] = 0.0f;' in src

    def test_shared_memory_declaration(self):
        fb = FunctionBuilder('k', block_dim=32)
        a = fb.tensor_param('A', f32, [32])
        smem = fb.shared_tensor('buf', f32, [2, 32])
        fb.store(smem, [0, thread_idx()], a[thread_idx()])
        src = generate_cuda(fb.finish())
        assert '__shared__ float buf[2][32];' in src
        assert 'buf[0][threadIdx.x]' in src

    def test_unroll_pragma(self):
        fb = FunctionBuilder('k', block_dim=1)
        a = fb.tensor_param('A', f32, [4])
        with fb.for_range(4, name='i', unroll=True) as i:
            fb.store(a, [i], 0.0)
        assert '#pragma unroll' in generate_cuda(fb.finish())

    def test_predicated_select_and_atomic(self):
        fb = FunctionBuilder('k', block_dim=8)
        a = fb.tensor_param('A', f32, [5])
        acc = fb.tensor_param('acc', f32, [1])
        t = thread_idx()
        fb.evaluate(atomic_add(acc, [0], if_then_else(t < 5, a[t], 0.0)))
        src = generate_cuda(fb.finish())
        assert 'atomicAdd(&acc[0]' in src
        assert 'threadIdx.x < 5 ?' in src

    def test_math_intrinsics(self):
        from repro.ir import UnaryExpr
        fb = FunctionBuilder('k', block_dim=1)
        a = fb.tensor_param('A', f32, [1])
        fb.store(a, [0], UnaryExpr('erf', UnaryExpr('exp', a[0])))
        src = generate_cuda(fb.finish())
        assert 'erff(expf(A[0]))' in src


class TestMatmulKernels:
    def test_single_buffer_structure(self):
        src = generate_cuda_module(build_matmul_module(64, 64, 64, SMALL))
        # one smem stage per operand, two syncs per K tile (Figure 3)
        assert '__shared__ float smem_a[1][16][8];' in src
        assert src.count('__syncthreads()') == 2

    def test_double_buffer_structure(self):
        """Figure 5: two buffers, one sync per steady-state iteration."""
        src = generate_cuda_module(build_matmul_module(64, 64, 64, SMALL_DB))
        assert '__shared__ float smem_a[2][16][8];' in src
        assert '__shared__ float smem_b[2][8][32];' in src
        # prologue sync + one sync inside the pipeline loop
        assert src.count('__syncthreads()') == 2
        assert 'regs_ld_a' in src and 'regs_ld_b' in src

    def test_predicates_dropped_for_divisible_shapes(self):
        """Hardware-centric predication folds away when extents divide (§4.3)."""
        exact = generate_cuda_module(build_matmul_module(64, 64, 64, SMALL))
        ragged = generate_cuda_module(build_matmul_module(63, 63, 63, SMALL))
        assert exact.count('?') == 0          # no selects left
        assert ragged.count('?') > 0          # predicated loads survive
        assert 'if (' not in exact
        assert 'if (' in ragged

    def test_split_k_emits_two_kernels(self):
        sched = MatmulSchedule(block_warps=(1, 1), warp_outer=(1, 1),
                               thread_layout=(4, 8), thread_tile=(4, 4),
                               block_k=8, split_k=2)
        src = generate_cuda_module(build_matmul_module(32, 32, 64, sched))
        assert src.count('__global__ void') == 2
        assert 'splitk_reduce' in src

    def test_for_task_must_be_lowered_first(self):
        from repro.backend.codegen import CudaCodegen
        from repro.core.taskmap import spatial
        fb = FunctionBuilder('k', block_dim=4)
        a = fb.tensor_param('A', f32, [4])
        with fb.for_task(spatial(4), worker=thread_idx()) as i:
            fb.store(a, [i], 0.0)
        gen = CudaCodegen()
        with pytest.raises(NotImplementedError):
            gen.func(fb.finish())


class TestExpressionPrecedence:
    """The emitted C must evaluate exactly like the IR tree it came from.

    Random trees over +, -, *, //, % and unary minus are printed and then
    re-evaluated as Python (C's ``/`` on nonnegative ints is Python's
    ``//``); any parenthesization bug in ``_PRECEDENCE`` changes the value.
    Valuations are filtered so every division/modulo sees a nonnegative
    dividend and positive divisor — where C and Python semantics agree.
    """

    def _random_tree(self, rng, env, depth):
        import repro.ir.expr as ir
        if depth == 0 or rng.random() < 0.3:
            if rng.random() < 0.5 and env:
                name = rng.choice(sorted(env))
                return ir.Var(name, ir.i32), env[name]
            value = int(rng.integers(0, 9))
            return ir.Constant(value, ir.i32), value
        op = rng.choice(['+', '-', '*', '//', '%', 'neg'])
        if op == 'neg':
            a, va = self._random_tree(rng, env, depth - 1)
            return ir.UnaryExpr('-', a), -va
        a, va = self._random_tree(rng, env, depth - 1)
        b, vb = self._random_tree(rng, env, depth - 1)
        if op in ('//', '%') and (va < 0 or vb <= 0):
            raise ValueError('C/Python division semantics diverge')
        ops = {'+': lambda: va + vb, '-': lambda: va - vb, '*': lambda: va * vb,
               '//': lambda: va // vb, '%': lambda: va % vb}
        value = ops[op]()
        return ir.BinaryExpr(op, a, b), value

    def test_roundtrip_random_trees(self):
        from repro.backend.codegen import CudaCodegen
        rng = np.random.default_rng(20260808)
        env = {'x': 3, 'y': 7, 'z': 2}
        gen = CudaCodegen()
        checked = 0
        while checked < 300:
            try:
                tree, expected = self._random_tree(rng, env, depth=4)
            except ValueError:
                continue
            text = gen.expr(tree)
            # C's '/' truncates but every division here is nonnegative, so
            # Python's floor division computes the same value
            got = eval(text.replace('/', '//'), dict(env))
            assert got == expected, (
                f'{text!r} printed from the IR evaluates to {got}, '
                f'expected {expected}')
            checked += 1

    def test_double_unary_minus_is_not_predecrement(self):
        import repro.ir.expr as ir
        from repro.backend.codegen import CudaCodegen
        gen = CudaCodegen()
        x = ir.Var('x', ir.i32)
        assert '--' not in gen.expr(ir.UnaryExpr('-', ir.UnaryExpr('-', x)))
        assert '--' not in gen.expr(ir.UnaryExpr('-', ir.Constant(-5, ir.i32)))
        assert eval(gen.expr(ir.UnaryExpr('-', ir.Constant(-5, ir.i32)))) == 5

    def test_mod_of_product_keeps_parens(self):
        """a % (b * c) must not print as a % b * c (which is (a%b)*c)."""
        import repro.ir.expr as ir
        from repro.backend.codegen import CudaCodegen
        gen = CudaCodegen()
        a, b, c = (ir.Var(n, ir.i32) for n in 'abc')
        text = gen.expr(ir.BinaryExpr('%', a, ir.BinaryExpr('*', b, c)))
        assert eval(text.replace('/', '//'), {'a': 7, 'b': 2, 'c': 3}) == 7 % 6
