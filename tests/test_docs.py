"""The docs tree: existence, link hygiene, and runnable serving snippets.

``docs/serving.md`` promises that every ``python`` code block runs against
the current API; this test executes them in order in one shared namespace,
exactly as a reader following the tutorial would.  The snippets carry their
own asserts, so API drift fails here instead of on the next reader.
"""
import pathlib
import re

import pytest

DOCS = pathlib.Path(__file__).resolve().parent.parent / 'docs'

REQUIRED_PAGES = ('architecture.md', 'serving.md', 'cache.md')


def python_blocks(text: str) -> list[str]:
    return re.findall(r'```python\n(.*?)```', text, re.DOTALL)


def test_docs_tree_exists():
    for page in REQUIRED_PAGES:
        path = DOCS / page
        assert path.is_file(), f'docs/{page} is missing'
        assert path.read_text().strip(), f'docs/{page} is empty'


def test_docs_internal_links_resolve():
    """Relative markdown links between doc pages must point at real files."""
    for page in REQUIRED_PAGES:
        text = (DOCS / page).read_text()
        for target in re.findall(r'\]\(([^)#:]+\.md)[^)]*\)', text):
            assert (DOCS / target).is_file(), (
                f'docs/{page} links to {target}, which does not exist')


def test_serving_doc_snippets_run(capsys):
    """Execute every python block of docs/serving.md, in order, shared ns."""
    blocks = python_blocks((DOCS / 'serving.md').read_text())
    assert len(blocks) >= 5, 'the serving tutorial lost its code blocks'
    namespace: dict = {}
    for i, block in enumerate(blocks):
        code = compile(block, f'docs/serving.md[block {i}]', 'exec')
        exec(code, namespace)            # noqa: S102 - the point of the test
    # the tutorial's own prints are the snippets' output; swallow them
    capsys.readouterr()


def test_other_docs_snippets_are_marked_non_runnable():
    """architecture.md / cache.md illustrate with ``text`` blocks or inline
    code; if someone adds a ``python`` block there it must run too."""
    for page in ('architecture.md', 'cache.md'):
        for i, block in enumerate(python_blocks((DOCS / page).read_text())):
            code = compile(block, f'docs/{page}[block {i}]', 'exec')
            exec(code, {})               # noqa: S102
