"""The docs tree: existence, link hygiene, and runnable doc snippets.

``docs/serving.md`` and ``docs/fleet.md`` promise that every ``python``
code block runs against the current API; this test executes each page's
blocks in order in one shared namespace, exactly as a reader following the
tutorial would.  The snippets carry their own asserts, so API drift fails
here instead of on the next reader — and a failure names the offending doc
file and snippet index (plus the snippet itself) instead of a bare assert.
"""
import os
import pathlib
import re
import shutil
import traceback

import pytest

DOCS = pathlib.Path(__file__).resolve().parent.parent / 'docs'

REQUIRED_PAGES = ('architecture.md', 'serving.md', 'cache.md', 'fleet.md',
                  'deployment.md', 'observability.md', 'tuning.md',
                  'analysis.md')

#: pages whose ``python`` blocks form an executable tutorial (run in order,
#: one shared namespace per page)
TUTORIAL_PAGES = ('serving.md', 'fleet.md', 'deployment.md',
                  'observability.md', 'tuning.md', 'analysis.md')


def python_blocks(text: str) -> list[str]:
    return re.findall(r'```python\n(.*?)```', text, re.DOTALL)


def run_page_blocks(page: str, namespace: dict) -> int:
    """Execute every python block of ``page`` in order; returns the count.

    On any exception the test fails naming the page, the zero-based snippet
    index, and the snippet source — so a doc regression reads as
    "docs/fleet.md snippet #3 raised KeyError", not as a bare assert.
    """
    blocks = python_blocks((DOCS / page).read_text())
    try:
        for i, block in enumerate(blocks):
            try:
                code = compile(block, f'docs/{page}[snippet {i}]', 'exec')
                exec(code, namespace)    # noqa: S102 - the point of the test
            except Exception:
                pytest.fail(
                    f'docs/{page} snippet #{i} failed:\n'
                    f'{traceback.format_exc()}\n'
                    f'--- snippet #{i} ---\n{block}')
    finally:
        # the tutorials mkdtemp a `workdir` for cache files; the snippets
        # stay clean of teardown noise, so the harness removes it
        workdir = namespace.get('workdir')
        if (isinstance(workdir, str)
                and os.path.basename(workdir).startswith('repro_')
                and os.path.isdir(workdir)):
            shutil.rmtree(workdir, ignore_errors=True)
    return len(blocks)


def test_docs_tree_exists():
    for page in REQUIRED_PAGES:
        path = DOCS / page
        assert path.is_file(), f'docs/{page} is missing'
        assert path.read_text().strip(), f'docs/{page} is empty'


def test_docs_internal_links_resolve():
    """Relative markdown links between doc pages must point at real files."""
    for page in REQUIRED_PAGES:
        text = (DOCS / page).read_text()
        for target in re.findall(r'\]\(([^)#:]+\.md)[^)]*\)', text):
            assert (DOCS / target).is_file(), (
                f'docs/{page} links to {target}, which does not exist')


def test_serving_doc_snippets_run(capsys):
    """Execute every python block of docs/serving.md, in order, shared ns."""
    count = run_page_blocks('serving.md', {})
    assert count >= 5, 'the serving tutorial lost its code blocks'
    # the tutorial's own prints are the snippets' output; swallow them
    capsys.readouterr()


def test_fleet_doc_snippets_run(capsys):
    """Execute every python block of docs/fleet.md, in order, shared ns."""
    count = run_page_blocks('fleet.md', {})
    assert count >= 5, 'the fleet tutorial lost its code blocks'
    capsys.readouterr()


def test_deployment_doc_snippets_run(capsys):
    """Execute every python block of docs/deployment.md, in order."""
    count = run_page_blocks('deployment.md', {})
    assert count >= 5, 'the deployment tutorial lost its code blocks'
    capsys.readouterr()


def test_observability_doc_snippets_run(capsys):
    """Execute every python block of docs/observability.md, in order."""
    count = run_page_blocks('observability.md', {})
    assert count >= 5, 'the observability tutorial lost its code blocks'
    capsys.readouterr()


def test_tuning_doc_snippets_run(capsys):
    """Execute every python block of docs/tuning.md, in order."""
    count = run_page_blocks('tuning.md', {})
    assert count >= 5, 'the tuning tutorial lost its code blocks'
    capsys.readouterr()


def test_analysis_doc_snippets_run(capsys):
    """Execute every python block of docs/analysis.md, in order."""
    count = run_page_blocks('analysis.md', {})
    assert count >= 5, 'the analysis tutorial lost its code blocks'
    capsys.readouterr()


def test_other_docs_snippets_are_marked_non_runnable(capsys):
    """architecture.md / cache.md illustrate with ``text`` blocks or inline
    code; if someone adds a ``python`` block there it must run too."""
    for page in REQUIRED_PAGES:
        if page in TUTORIAL_PAGES:
            continue
        run_page_blocks(page, {})
    capsys.readouterr()
