"""Static analyzer: bounds, coverage, races, and the compile/tuning gates."""
import math
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (AnalysisError, AnalysisReport, Interval,
                            ScheduleAnalyzer, analyze_module, check_coverage)
from repro.analysis.fixtures import (build_duplicate_writer_kernel,
                                     build_hole_mapping_kernel,
                                     build_missing_barrier_kernel,
                                     build_oob_store_kernel,
                                     poisoned_matmul_builder,
                                     strip_loop_barrier)
from repro.core.schedule import MatmulSchedule, ReduceSchedule
from repro.core.space import matmul_schedule_space
from repro.core.taskmap import (ComposedTaskMapping, CustomTaskMapping,
                                repeat, spatial)
from repro.core.tuning import MatmulTuner
from repro.ir.compute import compute, reduce, tensor_input
from repro.ir.task import Task
from repro.sched.matmul_template import build_matmul_module
from repro.sched.reduce_template import build_reduce_module

SMALL = MatmulSchedule(block_warps=(1, 1), warp_outer=(1, 1), thread_layout=(4, 8),
                       thread_tile=(4, 4), block_k=8, double_buffer=False)
SMALL_DB = MatmulSchedule(block_warps=(1, 1), warp_outer=(1, 1), thread_layout=(4, 8),
                          thread_tile=(4, 4), block_k=8, double_buffer=True)


# -- interval domain ----------------------------------------------------------

class TestInterval:
    def test_arith(self):
        a, b = Interval(0, 3), Interval(2, 5)
        assert (a + b).lo == 2 and (a + b).hi == 8
        assert (a - b).lo == -5 and (a - b).hi == 1
        assert (a * b).lo == 0 and (a * b).hi == 15
        assert (-b).lo == -5 and (-b).hi == -2

    def test_floordiv_keeps_one_sided_bounds(self):
        assert (Interval(0, None) // Interval.point(4)).lo == 0
        v = Interval(0, 63) // Interval.point(8)
        assert v.lo == 0 and v.hi == 7

    def test_mod_python_semantics(self):
        v = Interval(-5, 100) % Interval.point(8)
        assert v.lo == 0 and v.hi == 7
        # identity when already within [0, m)
        v = Interval(2, 5) % Interval.point(8)
        assert v.lo == 2 and v.hi == 5

    def test_within_and_unknown(self):
        assert Interval(0, 7).within(0, 7)
        assert not Interval(0, 8).within(0, 7)
        assert not Interval.unknown().within(0, 7)


# -- task-mapping coverage ----------------------------------------------------

def _brute_force_exact(mapping):
    """Independent exact-once oracle: raw worker2task enumeration."""
    counts = Counter()
    for w in range(mapping.num_workers):
        for task in mapping.worker2task(w):
            t = tuple(int(x) for x in task)
            if any(not (0 <= x < e) for x, e in zip(t, mapping.task_shape)):
                return False
            counts[t] += 1
    return (len(counts) == mapping.num_tasks
            and all(c == 1 for c in counts.values()))


class TestCoverage:
    def test_builtin_mappings_analytic(self):
        for m in (spatial(4, 8), repeat(2, 3),
                  ComposedTaskMapping(spatial(2, 2), repeat(4, 1))):
            rep = check_coverage(m)
            assert rep.exact and rep.method == 'analytic'

    def test_exact_custom_enumerated(self):
        m = CustomTaskMapping(task_shape=[6], num_workers=6,
                              func=lambda w: [(5 - w,)], name='rev')
        rep = check_coverage(m)
        assert rep.exact and rep.method == 'enumerated'

    def test_holes_reported(self):
        rep = check_coverage(CustomTaskMapping(
            task_shape=[8], num_workers=4, func=lambda w: [(2 * w,)],
            name='evens'))
        assert not rep.exact
        assert rep.num_holes == 4 and (1,) in rep.holes
        assert 'uncovered' in rep.describe()

    def test_duplicates_reported(self):
        rep = check_coverage(CustomTaskMapping(
            task_shape=[4], num_workers=8, func=lambda w: [(w % 4,)],
            name='doubled'))
        assert not rep.exact
        assert rep.num_duplicates == 4
        assert 'duplicate' in rep.describe()

    def test_out_of_domain_reported(self):
        rep = check_coverage(CustomTaskMapping(
            task_shape=[4], num_workers=4, func=lambda w: [(w + 1,)],
            name='shifted'))
        assert not rep.exact and rep.out_of_domain

    def test_budget_exceeded_is_unproven(self):
        big = CustomTaskMapping(task_shape=[1 << 20], num_workers=1 << 20,
                                func=lambda w: [(w,)], name='big')
        rep = check_coverage(big, budget=1 << 10)
        assert not rep.proven and not rep.exact
        assert rep.method == 'budget-exceeded'


@st.composite
def _random_mappings(draw):
    """Custom mappings (optionally composed with exact builtins)."""
    shape = draw(st.lists(st.integers(1, 4), min_size=1, max_size=2))
    num_tasks = math.prod(shape)
    num_workers = draw(st.integers(1, 6))
    table = draw(st.lists(
        st.lists(st.integers(0, num_tasks - 1), max_size=4),
        min_size=num_workers, max_size=num_workers))

    def func(w, _table=table, _shape=shape):
        out = []
        for flat in _table[w]:
            task = []
            for extent in reversed(_shape):
                task.append(flat % extent)
                flat //= extent
            out.append(tuple(reversed(task)))
        return out

    custom = CustomTaskMapping(task_shape=shape, num_workers=num_workers,
                               func=func, name='rand')
    wrap = draw(st.sampled_from(['none', 'spatial-outer', 'repeat-outer']))
    if wrap == 'spatial-outer':
        return ComposedTaskMapping(spatial(*([2] * len(shape))), custom)
    if wrap == 'repeat-outer':
        return ComposedTaskMapping(repeat(*([2] * len(shape))), custom)
    return custom


class TestCoverageProperty:
    @settings(max_examples=60, deadline=None)
    @given(_random_mappings())
    def test_verdict_matches_brute_force(self, mapping):
        rep = check_coverage(mapping)
        assert rep.proven
        assert rep.exact == _brute_force_exact(mapping)


# -- seeded-bad fixtures: one detection per failure class ---------------------

def _errors(module, check=None):
    report = analyze_module(module)
    errs = report.errors
    if check is not None:
        errs = [f for f in errs if f.check == check]
    return errs


class TestFixtureDetection:
    def test_oob_store_names_buffer_and_range(self):
        errs = _errors(build_oob_store_kernel(), check='bounds')
        assert len(errs) == 1
        f = errs[0]
        assert f.buffer == 'smem'
        assert '[1, 64]' in f.message and '[0, 64)' in f.message

    def test_hole_mapping_flags_uncovered_tasks(self):
        errs = _errors(build_hole_mapping_kernel(), check='coverage')
        assert len(errs) == 1
        assert 'uncovered' in errs[0].message
        assert "'evens'" in errs[0].message or 'evens' in errs[0].message

    def test_duplicate_writer_flags_mapping_and_race(self):
        module = build_duplicate_writer_kernel()
        cov = _errors(module, check='coverage')
        assert len(cov) == 1 and 'duplicate' in cov[0].message
        races = _errors(module, check='race')
        assert races and races[0].buffer == 'smem'

    def test_missing_barrier_names_buffer_and_phase(self):
        errs = _errors(build_missing_barrier_kernel(), check='race')
        assert len(errs) == 1
        f = errs[0]
        assert f.buffer == 'smem' and 'phase 0' in f.message

    def test_synced_control_kernel_is_clean(self):
        report = analyze_module(build_missing_barrier_kernel(
            missing_barrier=False))
        assert report.ok, report.summary()

    def test_stripped_template_races_on_shared_buffers(self):
        racy = strip_loop_barrier(build_matmul_module(64, 64, 64, SMALL_DB))
        errs = _errors(racy, check='race')
        assert errs
        assert {f.buffer for f in errs} <= {'smem_a', 'smem_b'}

    def test_fixtures_exit_nonzero_via_cli(self):
        from repro.analysis.__main__ import main
        assert main(['--fixtures']) == 1
        assert main(['--templates', '1']) == 0


# -- no false positives on real schedules -------------------------------------

class TestCleanKernels:
    @pytest.mark.parametrize('m,n,k,sched,batch', [
        (64, 64, 64, SMALL, 1),
        (64, 64, 64, SMALL_DB, 1),
        (63, 63, 63, SMALL, 1),        # ragged: predicated loads survive
        (63, 65, 63, SMALL_DB, 1),
        (64, 64, 64, SMALL_DB, 3),     # batched
    ])
    def test_matmul_variants(self, m, n, k, sched, batch):
        report = analyze_module(build_matmul_module(m, n, k, sched, batch=batch))
        assert report.ok, report.summary()

    def test_split_k(self):
        sched = MatmulSchedule(block_warps=(1, 1), warp_outer=(1, 1),
                               thread_layout=(4, 8), thread_tile=(4, 4),
                               block_k=8, split_k=2)
        report = analyze_module(build_matmul_module(32, 32, 64, sched))
        assert report.ok, report.summary()

    def test_reduce_template(self):
        a = tensor_input('A', 'float32', [5, 33])
        task = Task('rsum', [a], compute('B', [5], lambda i: reduce(
            [33], lambda j: a[i, j], 'sum')))
        for block in (32, 128):
            module = build_reduce_module(task, ReduceSchedule(block_size=block))
            report = analyze_module(module)
            assert report.ok, report.summary()


class TestBoundsProperty:
    @settings(max_examples=10, deadline=None)
    @given(st.sampled_from(matmul_schedule_space()),
           st.sampled_from([(64, 64, 64), (96, 72, 136), (33, 65, 17)]))
    def test_no_false_positives_on_space(self, sched, size):
        m, n, k = size
        report = analyze_module(build_matmul_module(m, n, k, sched))
        assert report.ok, report.summary()


# -- tuner gate ---------------------------------------------------------------

def _small_space():
    return [s for s in matmul_schedule_space() if s.block_k == 8][:6]


class TestTunerGate:
    def test_poisoned_candidate_rejected_choice_unchanged(self):
        space = _small_space()
        baseline = MatmulTuner().tune(64, 64, 64, space=space,
                                      try_split_k=False)
        # poison a loser so the winner must be unaffected
        bad = next(s for s in space if s != baseline.best_schedule)
        analyzer = ScheduleAnalyzer(builder=poisoned_matmul_builder(bad))
        tuner = MatmulTuner()
        result = tuner.tune(64, 64, 64, space=space, try_split_k=False,
                            analyzer=analyzer)
        assert result.analysis_rejected == 1
        assert tuner.analysis_checked == len(space)
        assert tuner.analysis_rejected == 1
        assert result.best_schedule == baseline.best_schedule
        assert result.best_latency == baseline.best_latency

    def test_all_rejected_raises(self):
        class RejectAll:
            def reject(self, m, n, k, sched, batch=1):
                return 'statically unsafe (test stub)'

        with pytest.raises(RuntimeError, match='reject'):
            MatmulTuner().tune(64, 64, 64, space=_small_space(),
                               try_split_k=False, analyzer=RejectAll())

    def test_schedule_analyzer_caches_verdicts(self):
        analyzer = ScheduleAnalyzer()
        assert analyzer.reject(64, 64, 64, SMALL_DB) is None
        assert analyzer.reject(64, 64, 64, SMALL_DB) is None  # cached path
        bad = ScheduleAnalyzer(builder=poisoned_matmul_builder(SMALL_DB))
        msg = bad.reject(64, 64, 64, SMALL_DB)
        assert msg is not None and 'race' in msg


# -- executor gate ------------------------------------------------------------

class TestExecutorGate:
    def _graph(self):
        from repro.graph import ops, randn, symbol, trace
        x = symbol([64, 64], name='x')
        w = randn([64, 64], seed=0, name='w')
        return trace(ops.matmul(x, w))

    def _poison(self, monkeypatch):
        from repro.sched import matmul_template
        original = matmul_template.build_matmul_module

        def poisoned(m, n, k, sched, name='matmul', batch=1):
            return strip_loop_barrier(
                original(m, n, k, sched, name=name, batch=batch))

        monkeypatch.setattr(matmul_template, 'build_matmul_module', poisoned)

    def test_healthy_compile_passes_gate(self):
        from repro.runtime import HidetExecutor
        executor = HidetExecutor(build_ir=True, space=[SMALL_DB],
                                 try_split_k=False)
        assert executor.check_ir
        compiled = executor.compile(self._graph())
        assert any(op.module is not None for op in compiled.ops)

    def test_poisoned_build_raises_analysis_error(self, monkeypatch):
        from repro.runtime import HidetExecutor
        self._poison(monkeypatch)
        executor = HidetExecutor(build_ir=True, space=[SMALL_DB],
                                 try_split_k=False)
        with pytest.raises(AnalysisError) as exc:
            executor.compile(self._graph())
        assert exc.value.report.errors

    def test_check_ir_false_escape_hatch(self, monkeypatch):
        from repro.runtime import HidetExecutor
        self._poison(monkeypatch)
        executor = HidetExecutor(build_ir=True, space=[SMALL_DB],
                                 try_split_k=False, check_ir=False)
        compiled = executor.compile(self._graph())
        assert any(op.module is not None for op in compiled.ops)

    def test_env_var_escape_hatch(self, monkeypatch):
        from repro.runtime import HidetExecutor
        monkeypatch.setenv('REPRO_SKIP_IR_CHECKS', '1')
        assert not HidetExecutor().check_ir
        monkeypatch.delenv('REPRO_SKIP_IR_CHECKS')
        assert HidetExecutor().check_ir

    def test_compile_report_counts_rejections(self, monkeypatch):
        from repro.runtime import HidetExecutor
        space = _small_space()
        bad = space[-1]
        analyzer = ScheduleAnalyzer(builder=poisoned_matmul_builder(bad))
        executor = HidetExecutor(space=space, try_split_k=False,
                                 candidate_analyzer=analyzer)
        compiled = executor.compile(self._graph())
        assert compiled.compile_report.analysis_checked == len(space)
        assert compiled.compile_report.analysis_rejected == 1


# -- report plumbing ----------------------------------------------------------

class TestReport:
    def test_summary_counts(self):
        report = analyze_module(build_oob_store_kernel())
        counts = report.counts()
        assert counts['bounds'] == 1
        assert 'oob_store' in report.kernels
        text = report.summary()
        assert 'bounds' in text and 'smem' in text

    def test_merged_reports_keep_all_kernels(self):
        merged = AnalysisReport()
        merged.extend(analyze_module(build_oob_store_kernel()))
        merged.extend(analyze_module(build_missing_barrier_kernel()))
        assert len(merged.kernels) == 2
        assert len(merged.errors) == 2
        assert not merged.ok
