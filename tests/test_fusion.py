"""Post-scheduling fusion (paper §4.2/§5.2, Figure 15)."""
import numpy as np
import pytest

from repro.backend.interpreter import run_kernel
from repro.core.schedule import MatmulSchedule
from repro.ir.compute import compute, reduce, tensor_input
from repro.ir.task import InverseMap, Task, identity_inverse_map
from repro.sched.fusion import (EpilogueStep, FusedTaskSpec, FusionError,
                                apply_fusion)
from repro.sched.matmul_template import build_matmul_module, matmul_task
from repro.sched.rule_based import build_rule_based_module

SMALL_DB = MatmulSchedule(block_warps=(1, 1), warp_outer=(1, 1), thread_layout=(4, 8),
                          thread_tile=(4, 4), block_k=8, double_buffer=True)


def _figure15_spec():
    """Mul(2.0) -> Reverse(anchor) -> Mul(3.0) -> Reshape(2, 50)."""
    n = 100
    a = tensor_input('A', 'float32', [n])
    anchor_out = compute('B', [n], lambda i: a[n - 1 - i])
    anchor = Task('reverse', [a], anchor_out)

    c = tensor_input('C', 'float32', [n])
    prologue = compute('A', [n], lambda i: c[i] * 2.0)

    b_in = tensor_input('B', 'float32', [n])
    mul3 = Task('mul3', [b_in], compute('E', [n], lambda i: b_in[i] * 3.0),
                inverse_maps={b_in: identity_inverse_map(1)})
    e_in = tensor_input('E', 'float32', [n])
    resh = Task('reshape', [e_in],
                compute('D', [2, 50], lambda i, j: e_in[i * 50 + j]),
                inverse_maps={e_in: InverseMap.from_lambda(
                    lambda x: [x // 50, x % 50], 1)})
    spec = FusedTaskSpec(anchor=anchor, prologue_defs={a: prologue},
                         epilogue_steps=[EpilogueStep(mul3, b_in),
                                         EpilogueStep(resh, e_in)])
    return anchor, spec, c


class TestFigure15:
    def test_fused_kernel_matches_reference(self):
        anchor, spec, _ = _figure15_spec()
        module = build_rule_based_module(anchor)
        result = apply_fusion(module, spec,
                              {anchor.inputs[0]: module[0].params[0]},
                              module[0].params[1])
        c = np.arange(100, dtype=np.float32)
        d = np.full((2, 50), np.nan, dtype=np.float32)
        run_kernel(result.module[0], [c, d])
        np.testing.assert_allclose(d, ((c * 2.0)[::-1] * 3.0).reshape(2, 50))

    def test_fused_params_are_outer_tensors(self):
        anchor, spec, c = _figure15_spec()
        module = build_rule_based_module(anchor)
        result = apply_fusion(module, spec,
                              {anchor.inputs[0]: module[0].params[0]},
                              module[0].params[1])
        names = [p.name for p in result.module[0].params]
        assert names == ['C', 'D']

    def test_generated_cuda_matches_paper_shape(self):
        """The emitted kernel computes D[i/50, i%50] = C[99-i]*2*3 (Fig. 15)."""
        from repro.backend.codegen import generate_cuda
        anchor, spec, _ = _figure15_spec()
        module = build_rule_based_module(anchor)
        result = apply_fusion(module, spec,
                              {anchor.inputs[0]: module[0].params[0]},
                              module[0].params[1])
        src = generate_cuda(result.module[0])
        assert 'C[99 - ' in src
        assert '* 2.0f * 3.0f' in src


class TestSpecValidation:
    def test_prologue_must_be_injective(self):
        a = tensor_input('A', 'float32', [4])
        anchor = Task('id', [a], compute('B', [4], lambda i: a[i]))
        x = tensor_input('X', 'float32', [4, 8])
        reducing = compute('A', [4], lambda i: reduce([8], lambda k: x[i, k]))
        with pytest.raises(FusionError, match='injective'):
            FusedTaskSpec(anchor=anchor, prologue_defs={a: reducing})

    def test_prologue_shape_must_match(self):
        a = tensor_input('A', 'float32', [4])
        anchor = Task('id', [a], compute('B', [4], lambda i: a[i]))
        c = tensor_input('C', 'float32', [8])
        wrong = compute('A', [8], lambda i: c[i])
        with pytest.raises(FusionError, match='shape'):
            FusedTaskSpec(anchor=anchor, prologue_defs={a: wrong})

    def test_epilogue_needs_inverse_map_on_chain_edge(self):
        b = tensor_input('B', 'float32', [4])
        task = Task('noinv', [b], compute('E', [4], lambda i: b[i] + 1.0))
        with pytest.raises(FusionError, match='bijective'):
            EpilogueStep(task, b)

    def test_epilogue_side_inputs_need_no_inverse_map(self):
        b = tensor_input('B', 'float32', [4])
        bias = tensor_input('bias', 'float32', [4])
        task = Task('addb', [b, bias],
                    compute('E', [4], lambda i: b[i] + bias[i]),
                    inverse_maps={b: identity_inverse_map(1)})
        EpilogueStep(task, b)   # must not raise

    def test_chain_input_must_belong_to_task(self):
        b = tensor_input('B', 'float32', [4])
        other = tensor_input('O', 'float32', [4])
        task = Task('t', [b], compute('E', [4], lambda i: b[i]),
                    inverse_maps={b: identity_inverse_map(1)})
        with pytest.raises(FusionError):
            EpilogueStep(task, other)


class TestMatmulFusion:
    def _fuse_bias_relu(self, m, n, k, sched):
        """matmul -> +bias (broadcast) -> relu, fused into the template."""
        anchor = matmul_task(m, n, k)
        module = build_matmul_module(m, n, k, sched)
        c_in = tensor_input('Cin', 'float32', [m, n])
        bias = tensor_input('bias', 'float32', [n])
        add = Task('bias_add', [c_in, bias],
                   compute('D', [m, n], lambda i, j: c_in[i, j] + bias[j]),
                   inverse_maps={c_in: identity_inverse_map(2)})
        d_in = tensor_input('D', 'float32', [m, n])
        from repro.ir import max_expr
        relu = Task('relu', [d_in],
                    compute('E', [m, n], lambda i, j: max_expr(d_in[i, j], 0.0)),
                    inverse_maps={d_in: identity_inverse_map(2)})
        spec = FusedTaskSpec(anchor=anchor,
                             epilogue_steps=[EpilogueStep(add, c_in),
                                             EpilogueStep(relu, d_in)])
        params = module[0].params
        anchor_inputs = {anchor.inputs[0]: params[0], anchor.inputs[1]: params[1]}
        out_param = module[1].params[1] if sched.split_k > 1 else params[2]
        return apply_fusion(module, spec, anchor_inputs, out_param)

    @pytest.mark.parametrize('split_k', [1, 2])
    def test_bias_relu_epilogue_on_template(self, split_k):
        m, n, k = 17, 33, 24
        sched = MatmulSchedule(block_warps=(1, 1), warp_outer=(1, 1),
                               thread_layout=(4, 8), thread_tile=(4, 4),
                               block_k=8, double_buffer=True, split_k=split_k)
        result = self._fuse_bias_relu(m, n, k, sched)
        rng = np.random.default_rng(0)
        a = rng.standard_normal((m, k), dtype=np.float32)
        b = rng.standard_normal((k, n), dtype=np.float32)
        bias = rng.standard_normal((n,), dtype=np.float32)
        e = np.full((m, n), np.nan, dtype=np.float32)
        if split_k == 1:
            run_kernel(result.module[0], [a, b, bias, e])
        else:
            partial = np.full((split_k, m, n), np.nan, dtype=np.float32)
            run_kernel(result.module[0], [a, b, partial])
            run_kernel(result.module[1], [partial, bias, e])
        np.testing.assert_allclose(e, np.maximum(a @ b + bias, 0.0),
                                   atol=1e-3, rtol=1e-4)

    def test_img2col_prologue_is_implicit_gemm(self):
        """Conv as matmul with the img2col gather fused into the loads (§5.2)."""
        from repro.graph import ops, randn, symbol, trace
        from repro.runtime import HidetExecutor
        x = symbol([1, 3, 6, 6], name='x')
        w = randn([4, 3, 3, 3], seed=1, name='w')
        g = trace(ops.conv2d(x, w, stride=1, padding=1))
        executor = HidetExecutor(build_ir=True)
        compiled = executor.compile(g)
        matmul_ops = [op for op in compiled.ops if op.kind == 'matmul_template']
        assert len(matmul_ops) == 1
        module = matmul_ops[0].module
        # the fused kernel reads the image directly: its params are x and the
        # reshaped weight, not an img2col matrix
        param_shapes = [p.type.shape for p in module[0].params
                        if hasattr(p.type, 'shape')]
        assert (1, 3, 6, 6) in param_shapes
