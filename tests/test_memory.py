"""The device-memory layer: footprints, ledgers, capacity-aware placement.

Covers the thread from :mod:`repro.gpusim.device` (DRAM capacity on the
device spec) through :mod:`repro.serve.memory` (footprints measured from
real FlowGraphs, the committed-bytes ledger), capacity-checked placement
(base trimming, first-fit-decreasing packing), the fleet's
register/evict/rehome accounting, memory-pressure autoscaling, and the
declarative spec's memory fields.
"""
import json
from dataclasses import replace

import pytest

from repro.gpusim.device import A100, LAPTOP_GPU, RTX3090, device_family_key
from repro.models import for_batch
from repro.serve import (Fleet, FleetSimulator, MemoryModel,
                         MemoryOverflowError, MemoryPressurePolicy,
                         ModelRegistry, PlacementPolicy, MemoryAwarePolicy,
                         footprint_from_graphs, format_bytes, poisson_trace)
from repro.serve.batcher import BatchingPolicy
from repro.serve.lifecycle import FailureEvent
from repro.serve.memory import graph_tensor_bytes

TINY = dict(layers=1, seq_length=8, vocab_size=100, hidden=16, heads=2)


def tiny_builder(b):
    return for_batch('bert', b, **TINY)


# ---------------------------------------------------------------------------
# device layer


def test_device_specs_carry_dram_capacity():
    assert RTX3090.memory_bytes == 24 * 1024 ** 3
    assert A100.memory_bytes == 40 * 1024 ** 3
    assert LAPTOP_GPU.memory_bytes == 8 * 1024 ** 3


def test_family_key_ignores_dram_capacity():
    # capacity is a residency question, not a launch-compatibility one: a
    # 24 GiB and a 12 GiB part with the same SM limits share schedules
    halved = replace(RTX3090, memory_bytes=12 * 1024 ** 3)
    assert device_family_key(halved) == device_family_key(RTX3090)


# ---------------------------------------------------------------------------
# format_bytes / MemoryModel


def test_format_bytes_units():
    assert format_bytes(512) == '512 B'
    assert format_bytes(2048) == '2.0 KiB'
    assert format_bytes(3 * 1024 ** 2) == '3.0 MiB'
    assert format_bytes(5 * 1024 ** 3) == '5.0 GiB'


def test_memory_model_commit_accumulates_and_release_pops():
    mem = MemoryModel(100, label='r0')
    mem.commit('a', 40)
    mem.commit('a', 10)                     # ladder growth: same key
    mem.commit('b', 30)
    assert mem.reserved('a') == 50
    assert mem.committed_bytes == 80
    assert mem.free_bytes == 20
    assert mem.utilization == pytest.approx(0.8)
    assert mem.release('a') == 50           # whole reservation at once
    assert mem.committed_bytes == 30
    assert mem.release('missing') == 0


def test_memory_model_peak_is_monotone():
    mem = MemoryModel(100)
    mem.commit('a', 70)
    mem.release('a')
    mem.commit('b', 20)
    assert mem.peak_committed_bytes == 70   # survives the release
    assert mem.committed_bytes == 20


def test_memory_model_overflow_is_loud_and_carries_numbers():
    mem = MemoryModel(100, label='r0:RTX3090')
    mem.commit('a', 90)
    with pytest.raises(MemoryOverflowError) as err:
        mem.commit('b', 20)
    exc = err.value
    assert (exc.key, exc.requested) == ('b', 20)
    assert (exc.capacity, exc.committed) == (100, 90)
    assert 'r0:RTX3090' in str(exc)
    # the failed commit left the ledger untouched
    assert mem.committed_bytes == 90 and mem.reserved('b') == 0


def test_memory_model_rejects_bad_values():
    with pytest.raises(ValueError):
        MemoryModel(0)
    mem = MemoryModel(10)
    with pytest.raises(ValueError):
        mem.commit('a', -1)


# ---------------------------------------------------------------------------
# footprints from real graphs


def test_graph_tensor_bytes_splits_weights_and_activations():
    split = graph_tensor_bytes(tiny_builder(1))
    # a transformer has both parameters and intermediates, and the largest
    # single transient is by definition no bigger than all of them
    assert split['weights'] > 0
    assert split['activations'] > 0
    assert 0 < split['workspace'] <= split['activations']


def test_footprint_scales_activations_with_batch():
    graphs = {1: tiny_builder(1), 4: tiny_builder(4)}
    fp = footprint_from_graphs('tiny', graphs)
    # weights are batch-independent; activations grow with the bucket
    assert fp.activation_bytes[4] > fp.activation_bytes[1]
    assert fp.total_bytes == (fp.weights_bytes + fp.workspace_bytes
                              + sum(fp.activation_bytes.values()))
    assert fp.bytes_for([1]) < fp.total_bytes
    assert fp.bucket_bytes(4) == fp.activation_bytes[4]
    assert fp.bucket_bytes(999) == 0


def test_footprint_requires_graphs():
    with pytest.raises(ValueError, match='no graphs'):
        footprint_from_graphs('empty', {})


# ---------------------------------------------------------------------------
# capacity-checked placement


def test_base_partition_without_memory_info_hosts_everywhere():
    hosting = PlacementPolicy().partition(['a', 'b'], 3)
    assert hosting == {'a': (0, 1, 2), 'b': (0, 1, 2)}


def test_base_partition_trims_to_capacity_with_coverage_first():
    # cap 10: both models cannot be everywhere, but each gets a home and
    # the remaining room is spread
    hosting = PlacementPolicy().partition(
        ['a', 'b'], 2, footprints={'a': 6, 'b': 6}, capacities=[10, 10])
    assert hosting['a'] and hosting['b']
    assert set(hosting['a']) | set(hosting['b']) == {0, 1}
    assert set(hosting['a']).isdisjoint(hosting['b'])     # no room to spread


def test_base_partition_abundant_dram_reproduces_host_everywhere():
    hosting = PlacementPolicy().partition(
        ['a', 'b'], 3, footprints={'a': 1, 'b': 1},
        capacities=[100, 100, 100])
    assert hosting == {'a': (0, 1, 2), 'b': (0, 1, 2)}


def test_base_partition_raises_when_a_model_fits_nowhere():
    with pytest.raises(MemoryOverflowError):
        PlacementPolicy().partition(['a'], 2, footprints={'a': 50},
                                    capacities=[10, 10])


def test_memory_aware_partition_packs_first_fit_decreasing():
    policy = MemoryAwarePolicy()
    hosting = policy.partition(
        ['big', 'small', 'tiny'], 3,
        footprints={'big': 8, 'small': 3, 'tiny': 2},
        capacities=[10, 10, 10])
    # FFD: big -> r0, small (no room on r0) -> r1, tiny -> back onto r0
    assert hosting == {'big': (0,), 'small': (1,), 'tiny': (0,)}


def test_memory_aware_partition_degrades_without_memory_info():
    assert MemoryAwarePolicy().partition(['a'], 2) == {'a': (0, 1)}


def test_memory_aware_rehome_prefers_most_free_survivor():
    policy = MemoryAwarePolicy()
    assert policy.rehome('m', [0, 1, 2], (3,),
                         free_bytes={0: 5, 1: 9, 2: 9}, need_bytes=4) == 1
    assert policy.rehome('m', [0, 1], (2,),
                         free_bytes={0: 1, 1: 1}, need_bytes=4) is None


def test_memory_aware_join_takes_thinnest_fitting_models():
    policy = MemoryAwarePolicy()
    chosen = policy.models_for_join(
        ['a', 'b', 'c'], 3, {'a': 2, 'b': 1, 'c': 1},
        footprints={'a': 4, 'b': 6, 'c': 3}, capacity=8)
    # b and c are thinnest-hosted; b takes 6 of the 8 bytes, after which
    # neither c (3) nor a (4) fits the remaining 2
    assert chosen == ['b']
    assert policy.models_for_join(['a', 'b'], 2, {'a': 1, 'b': 1}) == ['a', 'b']


# ---------------------------------------------------------------------------
# registry + fleet accounting


def test_registry_commits_measured_footprint_and_evicts():
    mem = MemoryModel(64 * 1024 ** 2, label='test')
    registry = ModelRegistry(memory=mem)
    registry.register('tiny', builder=tiny_builder, buckets=(1,))
    reserved = mem.reserved('tiny')
    assert reserved > 0
    paid = registry.total_compile_seconds
    assert paid > 0
    freed = registry.evict('tiny')
    assert freed == reserved
    assert mem.committed_bytes == 0
    assert 'tiny' not in registry
    # the tuning bill is a monotone cold-start cost, not a residency census
    assert registry.total_compile_seconds == paid


def test_registry_add_bucket_checks_capacity_before_compiling():
    registry = ModelRegistry(memory=MemoryModel(64 * 1024 ** 2))
    model = registry.register('tiny', builder=tiny_builder, buckets=(1,))
    base = registry.memory.committed_bytes
    registry.add_bucket('tiny', 2)
    assert registry.memory.committed_bytes > base     # incremental commit
    assert 2 in model.bucket_sizes or 2 in registry['tiny'].bucket_sizes


def test_registry_register_overflows_loudly():
    # a capacity a few KiB wide cannot hold even the tiny transformer
    registry = ModelRegistry(memory=MemoryModel(4096))
    with pytest.raises(MemoryOverflowError):
        registry.register('tiny', builder=tiny_builder, buckets=(1,))
    assert 'tiny' not in registry
    assert registry.memory.committed_bytes == 0


def _tight_fleet():
    """Three 10-byte replicas, three declared-footprint models, FFD-packed:
    big(8)+tiny(2) on r0, small(3) on r1, r2 empty."""
    fleet = Fleet(devices=[replace(RTX3090, memory_bytes=10)] * 3,
                  placement=MemoryAwarePolicy())
    fleet.register('big', builder=tiny_builder, buckets=(1,), memory_bytes=8)
    fleet.register('small', builder=tiny_builder, buckets=(1,), memory_bytes=3)
    fleet.register('tiny', builder=tiny_builder, buckets=(1,), memory_bytes=2)
    return fleet


def test_fleet_build_packs_and_accounts_declared_bytes():
    fleet = _tight_fleet().build()
    assert fleet.hosting == {'big': (0,), 'small': (1,), 'tiny': (0,)}
    assert fleet.replicas[0].memory.committed_bytes == 10
    assert fleet.replicas[1].memory.committed_bytes == 3
    assert fleet.replicas[2].memory.committed_bytes == 0
    assert fleet.model_footprints() == {'big': 8, 'small': 3, 'tiny': 2}


def test_fleet_evict_model_frees_bytes_and_unroutes():
    fleet = _tight_fleet().build()
    freed = fleet.evict_model(0, 'tiny')
    assert freed == 2
    assert fleet.hosting['tiny'] == ()
    assert fleet.replicas[0].memory.committed_bytes == 8
    with pytest.raises(KeyError):
        fleet.evict_model(0, 'tiny')


def test_fleet_rejects_model_that_fits_no_replica():
    fleet = Fleet(devices=[replace(RTX3090, memory_bytes=10)],
                  placement=MemoryAwarePolicy())
    fleet.register('huge', builder=tiny_builder, buckets=(1,),
                   memory_bytes=11)
    with pytest.raises(MemoryOverflowError):
        fleet.build()


def test_failover_evicts_redundant_idle_model_to_fit_orphan():
    """The eviction pressure valve: a dead replica's big model fits no
    survivor until a redundantly-hosted idle model is evicted."""
    fleet = _tight_fleet().build()
    # host 'small' and 'tiny' redundantly on the spare replica: after r0
    # dies, the orphaned 'big' (8 bytes) fits neither r1 (free 7) nor r2
    # (free 5) until a redundant idle model is evicted
    fleet.host_model(2, 'small')
    fleet.host_model(2, 'tiny')
    trace = poisson_trace(qps=500.0, num_requests=60,
                          models=['big', 'small', 'tiny'], seed=0)
    kill_at = trace[len(trace) // 2].arrival
    sim = FleetSimulator(fleet, BatchingPolicy(max_batch=1, max_wait=1e-4),
                         failures=[FailureEvent(time=kill_at, replica=0)])
    result = sim.run(trace)
    kinds = [e.kind for e in result.events]
    assert 'kill' in kinds and 'rehome' in kinds and 'evict' in kinds
    rehomed = [e for e in result.events if e.kind == 'rehome']
    assert any(e.detail == 'big' for e in rehomed)
    for replica in fleet.replicas:
        assert (replica.memory.peak_committed_bytes
                <= replica.memory.capacity_bytes)
    # conservation: nothing vanished in the shuffle
    assert len(trace) == (len(result.completions) + len(result.rejected)
                          + len(result.lost))


def test_scale_down_absorb_guard():
    """A victim whose queued samples exceed the survivors' admission
    headroom is skipped by the autoscaler's victim picker."""
    from repro.serve.trace import Request

    fleet = Fleet(devices=[RTX3090] * 2)    # host-everywhere round-robin
    fleet.register('tiny', builder=tiny_builder, buckets=(1,))
    sim = FleetSimulator(fleet, BatchingPolicy(max_batch=1, max_wait=1e-4,
                                               max_queue=2))
    sim.run(poisson_trace(qps=100.0, num_requests=4, models=['tiny'], seed=0))
    # stuff the victim's queue past what the survivor can absorb
    for i in range(2):
        assert sim._batchers[1].offer(
            Request(req_id=100 + i, model='tiny', size=1, arrival=0.0))
    assert sim._batchers[0].offer(
        Request(req_id=200, model='tiny', size=1, arrival=0.0))
    # survivor r0 has headroom 2 - 1 = 1 < 2 pending on the victim
    assert not sim._can_absorb(1, set())
    assert sim._retire_victims(1) == []
    # drain the victim's queue and the guard opens again
    sim._batchers[1].drain()
    assert sim._can_absorb(1, set())
    assert sim._retire_victims(1) == [1]


def test_memory_pressure_policy_scales_on_utilization():
    class View:
        def __init__(self, utils):
            self.utils = utils

        def serving_replicas(self):
            return list(range(len(self.utils)))

        def memory_utilization(self, r):
            return self.utils[r]

    policy = MemoryPressurePolicy(scale_up_utilization=0.8,
                                  scale_down_utilization=0.3)
    assert policy.desired_replicas(View([0.9, 0.9]), 0.0, 2) == 3
    assert policy.desired_replicas(View([0.5, 0.5]), 0.0, 2) == 2
    assert policy.desired_replicas(View([0.1, 0.1]), 0.0, 2) == 1
    assert policy.desired_replicas(View([]), 0.0, 2) == 2
    with pytest.raises(ValueError):
        MemoryPressurePolicy(scale_up_utilization=0.2,
                             scale_down_utilization=0.5)


def test_memory_pressure_policy_is_registered():
    from repro.serve import available_autoscale_policies, make_autoscale_policy
    assert 'memory_pressure' in available_autoscale_policies()
    assert isinstance(make_autoscale_policy('memory_pressure'),
                      MemoryPressurePolicy)


# ---------------------------------------------------------------------------
# declarative spec: memory fields


def _memory_spec():
    from repro.serve import (BatchingSpec, DeploymentSpec, ModelSpec,
                             PlacementSpec, ReplicaGroupSpec)
    return DeploymentSpec(
        models=(ModelSpec(name='bert', max_batch=2, buckets=(1, 2),
                          config=dict(TINY), memory_bytes=4 * 1024 ** 2),),
        replicas=(ReplicaGroupSpec(device='RTX3090', count=2,
                                   memory_bytes=16 * 1024 ** 2),),
        batching=BatchingSpec(max_batch=2),
        placement=PlacementSpec(policy='memory_aware'))


def test_spec_memory_fields_round_trip_byte_identical():
    from repro.serve import DeploymentSpec
    spec = _memory_spec()
    text = spec.to_json()
    again = DeploymentSpec.from_json(text)
    assert again == spec
    assert again.to_json() == text
    payload = json.loads(text)
    assert payload['models'][0]['memory_bytes'] == 4 * 1024 ** 2
    assert payload['replicas'][0]['memory_bytes'] == 16 * 1024 ** 2


def test_spec_rejects_model_bigger_than_any_group():
    from repro.serve import SpecValidationError
    spec = _memory_spec()
    over = replace(spec, models=(replace(spec.models[0],
                                         memory_bytes=17 * 1024 ** 2),))
    with pytest.raises(SpecValidationError) as err:
        over.validate()
    assert err.value.field == 'models[0].memory_bytes'


def test_spec_rejects_overcommitted_fleet_total():
    from repro.serve import ModelSpec, SpecValidationError
    spec = _memory_spec()
    # three 12 MiB models on two 16 MiB replicas: each fits *some* group,
    # but the fleet's 32 MiB cannot hold the declared 36 MiB total
    crowd = tuple(ModelSpec(name=f'm{i}', max_batch=2, buckets=(1, 2),
                            memory_bytes=12 * 1024 ** 2) for i in range(3))
    over = replace(spec, models=crowd)
    with pytest.raises(SpecValidationError) as err:
        over.validate()
    assert err.value.field == 'replicas'


def test_spec_rejects_nonpositive_memory_bytes():
    from repro.serve import SpecValidationError
    spec = _memory_spec()
    bad_model = replace(spec, models=(replace(spec.models[0],
                                              memory_bytes=0),))
    with pytest.raises(SpecValidationError) as err:
        bad_model.validate()
    assert err.value.field == 'models[0].memory_bytes'
    bad_group = replace(spec, replicas=(replace(spec.replicas[0],
                                                memory_bytes=0),))
    with pytest.raises(SpecValidationError) as err:
        bad_group.validate()
    assert err.value.field == 'replicas[0].memory_bytes'


def test_deployment_threads_group_memory_override_to_replicas():
    from repro.serve import Deployment
    deployment = Deployment(_memory_spec()).build()
    for replica in deployment.fleet.replicas:
        assert replica.memory.capacity_bytes == 16 * 1024 ** 2
        assert replica.device.name == 'RTX3090'
    # the registered device itself is untouched
    assert RTX3090.memory_bytes == 24 * 1024 ** 3


def test_serve_stats_report_memory_fraction():
    from repro.serve import Deployment, format_serving_report
    deployment = Deployment(_memory_spec())
    trace = poisson_trace(qps=200.0, num_requests=40, models=['bert'], seed=0)
    stats = deployment.run(trace).stats()
    assert stats.peak_memory_bytes                     # per-replica labels
    assert 0.0 < stats.peak_memory_utilization <= 1.0
    assert 'DRAM committed' in format_serving_report(stats)
