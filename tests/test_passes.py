"""IR passes: task-mapping lowering, simplification, verification."""
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.taskmap import repeat, spatial
from repro.ir import (BarrierStmt, BufferStoreStmt, Constant, FunctionBuilder,
                      IfStmt, SeqStmt, f32, tensor_var, thread_idx, var)
from repro.ir.functor import collect
from repro.ir.passes import (IRVerificationError, lower_task_mappings, simplify,
                             verify_function)
from repro.ir.passes.simplify import Simplifier, const_int
from repro.ir.stmt import AssignStmt, DeclareStmt, ForStmt, ForTaskStmt


def _lowered_store_tasks(mapping, workers):
    """Execute the lowered ForTask for each worker and collect stored indices."""
    from repro.backend.interpreter import KernelInterpreter
    import numpy as np
    dims = len(mapping.task_shape)
    fb = FunctionBuilder('probe', grid_dim=1, block_dim=workers)
    out = fb.tensor_param('out', 'int32', list(mapping.task_shape))
    with fb.for_task(mapping, worker=thread_idx()) as idx:
        idx = idx if isinstance(idx, tuple) else (idx,)
        fb.store(out, list(idx), thread_idx())
    func = fb.finish()
    arr = np.full(mapping.task_shape, -1, dtype=np.int32)
    KernelInterpreter(func).run([arr])
    return arr


class TestLowering:
    def test_lowered_matches_worker2task(self):
        tm = repeat(4, 1) * spatial(16, 8)
        arr = _lowered_store_tasks(tm, tm.num_workers)
        for w in range(tm.num_workers):
            for (i, k) in tm(w):
                assert arr[i, k] == w

    @given(st.sampled_from([
        spatial(8), repeat(3) * spatial(4), spatial(2, 2) * repeat(2, 2),
        repeat(2, 1) * spatial(4, 8), spatial(4, 8, ranks=[1, 0]),
    ]))
    @settings(max_examples=10, deadline=None)
    def test_lowering_assignment_property(self, tm):
        arr = _lowered_store_tasks(tm, tm.num_workers)
        for w in range(tm.num_workers):
            for task in tm(w):
                assert arr[tuple(task)] == w

    def test_large_repeat_becomes_loop_not_unrolled_copies(self):
        tm = repeat(32) * spatial(4)
        fb = FunctionBuilder('k', block_dim=4)
        out = fb.tensor_param('out', f32, [128])
        with fb.for_task(tm, worker=thread_idx()) as i:
            fb.store(out, [i], 1.0)
        lowered = lower_task_mappings(fb.finish())
        loops = collect(lowered.body, ForStmt)
        assert len(loops) == 1 and const_int(loops[0].extent) == 32
        stores = collect(lowered.body, BufferStoreStmt)
        assert len(stores) == 1   # one body instance, not 32 copies

    def test_lowering_leaves_no_for_task(self):
        fb = FunctionBuilder('k', block_dim=8)
        out = fb.tensor_param('out', f32, [8])
        with fb.for_task(spatial(8), worker=thread_idx()) as i:
            fb.store(out, [i], 0.0)
        lowered = lower_task_mappings(fb.finish())
        assert not collect(lowered.body, ForTaskStmt)
        verify_function(lowered, lowered=True)


class TestSimplify:
    def test_constant_folding(self):
        x = var('x')
        assert repr(simplify((x + 0) * 1 + 2 * 3)) == 'x + 6'
        assert const_int(simplify(Constant(7, 'int32') % 4)) == 3

    def test_zero_mul_and_div(self):
        x = var('x')
        assert const_int(simplify(x * 0)) == 0
        assert repr(simplify(x // 1)) == 'x'
        assert const_int(simplify(x % 1)) == 0

    def test_boolean_short_circuit(self):
        x = var('x')
        t = Constant(True, 'bool')
        f = Constant(False, 'bool')
        from repro.ir import BinaryExpr
        assert repr(simplify(BinaryExpr('&&', t, x < 1))) == 'x < 1'
        assert simplify(BinaryExpr('&&', f, x < 1)).value is False
        assert simplify(BinaryExpr('||', t, x < 1)).value is True

    def test_range_based_modulo_elimination(self):
        """threadIdx.x % 8 folds when block_dim proves the range."""
        fb = FunctionBuilder('k', block_dim=8)
        out = fb.tensor_param('out', f32, [8])
        fb.store(out, [thread_idx() % 8], 1.0)
        fb.store(out, [thread_idx() // 8], 2.0)   # provably 0
        func = simplify(fb.finish())
        stores = collect(func.body, BufferStoreStmt)
        assert repr(stores[0].indices[0]) == 'threadIdx.x'
        assert const_int(stores[1].indices[0]) == 0

    def test_loop_with_extent_one_inlined(self):
        fb = FunctionBuilder('k')
        out = fb.tensor_param('out', f32, [4])
        with fb.for_range(1, name='i') as i:
            fb.store(out, [i], 1.0)
        func = simplify(fb.finish())
        assert not collect(func.body, ForStmt)

    def test_if_with_constant_condition(self):
        fb = FunctionBuilder('k')
        out = fb.tensor_param('out', f32, [4])
        with fb.if_then(Constant(True, 'bool')):
            fb.store(out, [0], 1.0)
        func = simplify(fb.finish())
        assert not collect(func.body, IfStmt)

    def test_provable_bound_predicate_dropped(self):
        """The hardware-centric predicate folds away on divisible shapes."""
        fb = FunctionBuilder('k', grid_dim=4, block_dim=32)
        from repro.ir import block_idx
        out = fb.tensor_param('out', f32, [128])
        gi = block_idx() * 32 + thread_idx()
        with fb.if_then(gi < 128):
            fb.store(out, [gi], 1.0)
        func = simplify(fb.finish())
        assert not collect(func.body, IfStmt)

    @given(st.integers(-20, 20), st.integers(-20, 20), st.integers(1, 7))
    @settings(max_examples=50, deadline=None)
    def test_simplify_preserves_value(self, a, b, m):
        """Random integer expressions evaluate identically after simplify."""
        x = var('x')
        expr = ((x + a) * b) % m + (x * 0) + (x + a) // m
        simplified = simplify(expr)
        from repro.backend.interpreter import KernelInterpreter
        interp = KernelInterpreter.__new__(KernelInterpreter)
        for xv in range(0, 10):
            env = {x._id: xv}
            ctx = _ctx(env)
            assert interp.compile_expr(expr)(ctx) == interp.compile_expr(simplified)(ctx)


def _ctx(env):
    from repro.backend.interpreter import _Ctx
    return _Ctx(env, {}, (0, 0, 0), (0, 0, 0))


class TestVerifier:
    def _func_with_body(self, body, params):
        from repro.ir import Function
        return Function('k', params, body, 1, 32)

    def test_undeclared_variable(self):
        out = tensor_var('out', f32, [4])
        ghost = var('ghost')
        func = self._func_with_body(BufferStoreStmt(out, [ghost], Constant(0.0, f32)), [out])
        with pytest.raises(IRVerificationError, match='before declaration'):
            verify_function(func)

    def test_rank_mismatch(self):
        out = tensor_var('out', f32, [4, 4])
        func = self._func_with_body(BufferStoreStmt(out, [var('i')], Constant(0.0, f32)), [out])
        with pytest.raises(IRVerificationError):
            verify_function(func)

    def test_double_declaration(self):
        v = var('x')
        body = SeqStmt([DeclareStmt(v, Constant(0, 'int32')),
                        DeclareStmt(v, Constant(1, 'int32'))])
        with pytest.raises(IRVerificationError, match='declared twice'):
            verify_function(self._func_with_body(body, []))

    def test_barrier_in_divergent_branch(self):
        out = tensor_var('out', f32, [4])
        body = IfStmt(thread_idx() < 2, BarrierStmt())
        with pytest.raises(IRVerificationError, match='deadlock'):
            verify_function(self._func_with_body(body, [out]))

    def test_barrier_in_uniform_branch_ok(self):
        from repro.ir import block_idx
        out = tensor_var('out', f32, [4])
        body = IfStmt(block_idx() < 2, BarrierStmt())
        verify_function(self._func_with_body(body, [out]))

    def test_assign_to_tensor_rejected(self):
        out = tensor_var('out', f32, [4])
        body = AssignStmt(out, Constant(0.0, f32))
        with pytest.raises(IRVerificationError):
            verify_function(self._func_with_body(body, [out]))

    def test_for_task_rejected_when_lowered(self):
        fb = FunctionBuilder('k', block_dim=8)
        out = fb.tensor_param('out', f32, [8])
        with fb.for_task(spatial(8), worker=thread_idx()) as i:
            fb.store(out, [i], 0.0)
        func = fb.finish()
        with pytest.raises(IRVerificationError):
            verify_function(func, lowered=True)
        verify_function(func, lowered=False)
