"""The matmul template: functional correctness of every scheduling variant."""
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backend.interpreter import run_kernel
from repro.core.schedule import MatmulSchedule
from repro.gpusim.stats import OVERLAP_DOUBLE_BUFFER, OVERLAP_NONE
from repro.sched.matmul_template import build_matmul_module, matmul_stats, matmul_task

SMALL = MatmulSchedule(block_warps=(1, 1), warp_outer=(1, 1), thread_layout=(4, 8),
                       thread_tile=(4, 4), block_k=8, double_buffer=False)
SMALL_DB = MatmulSchedule(block_warps=(1, 1), warp_outer=(1, 1), thread_layout=(4, 8),
                          thread_tile=(4, 4), block_k=8, double_buffer=True)
TWO_WARP = MatmulSchedule(block_warps=(2, 1), warp_outer=(1, 2), thread_layout=(4, 8),
                          thread_tile=(2, 2), block_k=8, double_buffer=True)


def _run(m, n, k, sched, batch=1, seed=0):
    mod = build_matmul_module(m, n, k, sched, batch=batch)
    rng = np.random.default_rng(seed)
    if batch == 1:
        a = rng.standard_normal((m, k), dtype=np.float32)
        b = rng.standard_normal((k, n), dtype=np.float32)
        c = np.full((m, n), np.nan, dtype=np.float32)
    else:
        a = rng.standard_normal((batch, m, k), dtype=np.float32)
        b = rng.standard_normal((batch, k, n), dtype=np.float32)
        c = np.full((batch, m, n), np.nan, dtype=np.float32)
    if sched.split_k == 1:
        run_kernel(mod[0], [a, b, c])
    else:
        partial = np.full((sched.split_k, m, n), np.nan, dtype=np.float32)
        run_kernel(mod[0], [a, b, partial])
        run_kernel(mod[1], [partial, c])
    ref = a @ b
    np.testing.assert_allclose(c, ref, atol=1e-3, rtol=1e-4)


class TestCorrectness:
    def test_exact_tile_single_buffer(self):
        _run(16, 32, 16, SMALL)

    def test_exact_tile_double_buffer(self):
        _run(16, 32, 24, SMALL_DB)

    def test_predicated_all_dims(self):
        _run(13, 29, 19, SMALL)       # nothing divides the tiles

    def test_predicated_double_buffer(self):
        _run(17, 37, 23, SMALL_DB)

    def test_prime_size_like_fig19(self):
        """The hardware-centric schedule handles primes (2039-style)."""
        _run(31, 31, 31, SMALL_DB)

    def test_two_warp_schedule(self):
        _run(32, 64, 16, TWO_WARP)

    def test_split_k(self):
        sched = MatmulSchedule(block_warps=(1, 1), warp_outer=(1, 1),
                               thread_layout=(4, 8), thread_tile=(4, 4),
                               block_k=8, double_buffer=True, split_k=4)
        _run(16, 32, 64, sched)

    def test_split_k_uneven_reduction(self):
        sched = MatmulSchedule(block_warps=(1, 1), warp_outer=(1, 1),
                               thread_layout=(4, 8), thread_tile=(4, 4),
                               block_k=8, double_buffer=False, split_k=2)
        _run(16, 32, 27, sched)       # 27 does not divide by split or tile

    def test_batched(self):
        _run(16, 32, 16, SMALL_DB, batch=3)

    def test_batch_and_split_k_conflict(self):
        sched = MatmulSchedule(split_k=2)
        with pytest.raises(ValueError, match='blockIdx.z'):
            build_matmul_module(64, 64, 64, sched, batch=2)

    def test_invalid_schedule_rejected(self):
        bad = MatmulSchedule(thread_layout=(3, 8))   # 24 lanes != warp size
        assert not bad.is_valid()
        with pytest.raises(ValueError):
            build_matmul_module(16, 16, 16, bad)

    @given(st.integers(5, 40), st.integers(5, 40), st.integers(5, 40))
    @settings(max_examples=8, deadline=None)
    def test_random_shapes_double_buffer(self, m, n, k):
        _run(m, n, k, SMALL_DB, seed=m * n * k)


class TestStats:
    def test_stats_reflect_double_buffering(self):
        sb = matmul_stats(256, 256, 256, SMALL)[0]
        db = matmul_stats(256, 256, 256, SMALL_DB)[0]
        assert sb.overlap == OVERLAP_NONE and db.overlap == OVERLAP_DOUBLE_BUFFER
        assert db.smem_bytes_per_block == 2 * sb.smem_bytes_per_block
        assert db.regs_per_thread > sb.regs_per_thread

    def test_padding_waste_counted(self):
        """2039-ish sizes do the work of the padded tile grid (§4.3)."""
        exact = matmul_stats(64, 64, 64, SMALL)[0]
        padded = matmul_stats(63, 63, 63, SMALL)[0]
        assert padded.flops == exact.flops
        assert padded.grid_blocks == exact.grid_blocks

    def test_split_k_adds_reduce_kernel(self):
        sched = MatmulSchedule(split_k=4)
        stats = matmul_stats(128, 128, 2048, sched)
        assert len(stats) == 2
        main, reduce = stats
        assert main.grid_blocks == 4 * matmul_stats(128, 128, 2048, MatmulSchedule())[0].grid_blocks
        assert reduce.is_memory_bound_hint

    def test_batch_scales_work(self):
        single = matmul_stats(64, 64, 64, SMALL_DB)[0]
        batched = matmul_stats(64, 64, 64, SMALL_DB, batch=4)[0]
        assert batched.grid_blocks == 4 * single.grid_blocks
        assert batched.flops == 4 * single.flops

    def test_task_definition(self):
        task = matmul_task(8, 12, 16)
        assert not task.is_injective
        assert task.attrs['kind'] == 'matmul'
        assert task.output.shape == (8, 12)


class TestScheduleGeometry:
    def test_paper_running_example(self):
        """spatial(4,2)*repeat(2,2)*spatial(4,8)*repeat(4,4) => 128x128, 256 threads."""
        sched = MatmulSchedule(block_warps=(4, 2), warp_outer=(2, 2),
                               thread_layout=(4, 8), thread_tile=(4, 4))
        assert (sched.block_m, sched.block_n) == (128, 128)
        assert sched.threads == 256

    def test_grid_covers_problem(self):
        sched = MatmulSchedule()
        gx, gy, gz = sched.grid(1000, 500)
        assert gx * sched.block_n >= 500 and gy * sched.block_m >= 1000

    def test_short_repr_mentions_buffering(self):
        assert MatmulSchedule(double_buffer=True).short_repr().endswith('.db')
        assert MatmulSchedule(double_buffer=False).short_repr().endswith('.sb')
