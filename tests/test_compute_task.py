"""Computation definitions and tasks (fusion classification, inverse maps)."""
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ir.compute import GridCompute, ReduceCompute, compute, reduce, tensor_input
from repro.ir.passes.simplify import const_int, simplify
from repro.ir.task import InverseMap, Task, identity_inverse_map
from repro.ir.tools import substitute


class TestComputeDSL:
    def test_grid_compute_shape_and_axes(self):
        a = tensor_input('A', 'float32', [4, 8])
        c = compute('C', [4, 8], lambda i, j: a[i, j] * 2.0)
        assert isinstance(c, GridCompute)
        assert c.shape == (4, 8) and len(c.axes) == 2
        assert c.is_injective
        assert c.dtype.name == 'float32'

    def test_reduce_compute(self):
        a = tensor_input('A', 'float32', [4, 8])
        c = compute('C', [4], lambda i: reduce([8], lambda k: a[i, k]))
        assert not c.is_injective
        node = c.value
        assert isinstance(node, ReduceCompute)
        assert node.num_iterations == 8 and node.init_value == 0.0

    def test_reduce_op_validation(self):
        with pytest.raises(ValueError):
            reduce([4], lambda k: k, op='prod')

    def test_reduce_init_values(self):
        assert reduce([2], lambda k: k, op='max').init_value == -np.inf
        assert reduce([2], lambda k: k, op='min').init_value == np.inf

    def test_axes_shape_mismatch(self):
        with pytest.raises(ValueError):
            GridCompute('C', [4, 4], axes=(), value=tensor_input('A', 'float32', [1])[0])


class TestTaskClassification:
    def test_elementwise_is_bijective(self):
        a = tensor_input('A', 'float32', [8])
        task = Task('relu', [a], compute('B', [8], lambda i: a[i]),
                    inverse_maps={a: identity_inverse_map(1)})
        assert task.is_injective and task.is_bijective

    def test_injective_without_inverse_map_not_bijective(self):
        a = tensor_input('A', 'float32', [8])
        task = Task('gather', [a], compute('B', [4], lambda i: a[i * 2]))
        assert task.is_injective and not task.is_bijective

    def test_reduction_is_neither(self):
        a = tensor_input('A', 'float32', [4, 8])
        task = Task('sum', [a],
                    compute('B', [4], lambda i: reduce([8], lambda k: a[i, k])))
        assert not task.is_injective and not task.is_bijective

    def test_missing_inverse_map_raises(self):
        a = tensor_input('A', 'float32', [4])
        task = Task('t', [a], compute('B', [4], lambda i: a[i]))
        with pytest.raises(KeyError):
            task.inverse_map_of(a)


class TestInverseMaps:
    def test_identity(self):
        im = identity_inverse_map(2)
        out = im.apply([3, 4])
        assert [const_int(simplify(i)) for i in out] == [3, 4]

    def test_apply_arity_checked(self):
        with pytest.raises(ValueError):
            identity_inverse_map(2).apply([1])

    @given(st.integers(0, 99))
    @settings(max_examples=25, deadline=None)
    def test_reshape_inverse_roundtrip(self, flat):
        """reshape [100] -> [4, 25]: inverse(forward(x)) == x elementwise."""
        im = InverseMap.from_lambda(lambda x: [x // 25, x % 25], 1)
        i, j = (const_int(simplify(e)) for e in im.apply([flat]))
        assert i * 25 + j == flat

    @given(st.integers(0, 3), st.integers(0, 4))
    @settings(max_examples=25, deadline=None)
    def test_operator_inverse_maps_consistent(self, i, j):
        """For each bijective op: out[inverse(idx)] is where in[idx] lands."""
        from repro.graph import ops, symbol
        x = symbol([4, 5], name='x')
        for build in (lambda: ops.transpose(x, [1, 0]).producer,
                      lambda: ops.reshape(x, [20]).producer,
                      lambda: ops.relu(x).producer):
            op = build()
            task = op.task
            inp = task.inputs[0]
            inverse = task.inverse_map_of(inp)
            out_idx = [const_int(simplify(e)) for e in inverse.apply([i, j])]
            # forward access: substitute the output axes with out_idx and
            # confirm the op reads exactly in[i, j]
            mapping = dict(zip(task.output.axes, [simplify(_c(v)) for v in out_idx]))
            value = simplify(substitute(task.output.value, mapping))
            from repro.ir.expr import TensorElement
            from repro.ir.functor import collect
            accesses = [e for e in collect(value, TensorElement) if e.base is inp]
            assert len(accesses) == 1
            got = [const_int(simplify(e)) for e in accesses[0].indices]
            assert got == [i, j]


def _c(v):
    from repro.ir.expr import Constant
    return Constant(v, 'int32')
