"""Rule-based scheduling and the reduction template (paper §5.1.3, §6.1)."""
import numpy as np
import pytest

from repro.backend.interpreter import run_kernel
from repro.core.schedule import ReduceSchedule
from repro.ir import max_expr
from repro.ir.compute import compute, reduce, tensor_input
from repro.ir.task import Task
from repro.sched.lower_compute import ComputeLoweringError
from repro.sched.reduce_template import (build_reduce_module, is_last_axis_reduction,
                                         reduce_stats)
from repro.sched.rule_based import build_rule_based_module, rule_based_stats


def _run_task(module, arrays):
    run_kernel(module[0], arrays)


class TestRuleBasedInjective:
    def test_elementwise(self):
        a = tensor_input('A', 'float32', [7, 9])
        task = Task('t', [a], compute('B', [7, 9], lambda i, j: a[i, j] * 2.0 + 1.0))
        module = build_rule_based_module(task)
        a_np = np.random.default_rng(0).standard_normal((7, 9)).astype(np.float32)
        b_np = np.full((7, 9), np.nan, dtype=np.float32)
        _run_task(module, [a_np, b_np])
        np.testing.assert_allclose(b_np, a_np * 2 + 1, rtol=1e-6)

    def test_transform_with_gather(self):
        a = tensor_input('A', 'float32', [10])
        task = Task('rev', [a], compute('B', [10], lambda i: a[9 - i]))
        module = build_rule_based_module(task)
        a_np = np.arange(10, dtype=np.float32)
        b_np = np.full(10, np.nan, dtype=np.float32)
        _run_task(module, [a_np, b_np])
        np.testing.assert_allclose(b_np, a_np[::-1])

    def test_tail_block_predicated(self):
        """Output size not divisible by the block: the guard must hold."""
        n = 300   # 256-thread blocks -> 2 blocks, 212-thread tail
        a = tensor_input('A', 'float32', [n])
        task = Task('t', [a], compute('B', [n], lambda i: a[i] + 1.0))
        module = build_rule_based_module(task)
        assert module[0].num_blocks == 2
        a_np = np.zeros(n, dtype=np.float32)
        b_np = np.full(n, np.nan, dtype=np.float32)
        _run_task(module, [a_np, b_np])
        assert np.all(b_np == 1.0)


class TestRuleBasedReduce:
    def test_serial_sum(self):
        a = tensor_input('A', 'float32', [5, 33])
        task = Task('sum', [a],
                    compute('B', [5], lambda i: reduce([33], lambda k: a[i, k])))
        module = build_rule_based_module(task)
        a_np = np.random.default_rng(1).standard_normal((5, 33)).astype(np.float32)
        b_np = np.full(5, np.nan, dtype=np.float32)
        _run_task(module, [a_np, b_np])
        np.testing.assert_allclose(b_np, a_np.sum(axis=1), rtol=1e-4, atol=1e-5)

    def test_multi_axis_avg(self):
        a = tensor_input('A', 'float32', [3, 4, 5])
        task = Task('avg', [a], compute('B', [3], lambda i: reduce(
            [4, 5], lambda p, q: a[i, p, q], op='avg')))
        module = build_rule_based_module(task)
        a_np = np.random.default_rng(2).standard_normal((3, 4, 5)).astype(np.float32)
        b_np = np.full(3, np.nan, dtype=np.float32)
        _run_task(module, [a_np, b_np])
        np.testing.assert_allclose(b_np, a_np.mean(axis=(1, 2)), rtol=1e-4, atol=1e-5)

    def test_nested_reduce_rejected(self):
        a = tensor_input('A', 'float32', [4, 4])
        inner = reduce([4], lambda k: a[0, k])
        task = Task('bad', [a], compute('B', [1], lambda i: reduce(
            [4], lambda k: inner)))
        with pytest.raises(ComputeLoweringError, match='nested'):
            build_rule_based_module(task)

    def test_stats_memory_bound(self):
        a = tensor_input('A', 'float32', [128, 64])
        task = Task('sum', [a],
                    compute('B', [128], lambda i: reduce([64], lambda k: a[i, k])))
        (stats,) = rule_based_stats(task)
        assert stats.is_memory_bound_hint
        assert stats.gmem_read_bytes == 128 * 64 * 4


class TestReduceTemplate:
    def _sum_task(self, rows, cols, op='sum'):
        a = tensor_input('A', 'float32', [rows, cols])
        return Task('r', [a], compute('B', [rows], lambda i: reduce(
            [cols], lambda k: a[i, k], op=op)))

    @pytest.mark.parametrize('op,ref', [('sum', np.sum), ('max', np.max),
                                        ('avg', np.mean)])
    def test_block_reduce_ops(self, op, ref):
        rows, cols = 6, 200
        task = self._sum_task(rows, cols, op)
        module = build_reduce_module(task, ReduceSchedule(block_size=64))
        a_np = np.random.default_rng(3).standard_normal((rows, cols)).astype(np.float32)
        b_np = np.full(rows, np.nan, dtype=np.float32)
        _run_task(module, [a_np, b_np])
        np.testing.assert_allclose(b_np, ref(a_np, axis=1), rtol=1e-4, atol=1e-5)

    def test_cols_not_multiple_of_block(self):
        task = self._sum_task(4, 137)
        module = build_reduce_module(task, ReduceSchedule(block_size=64,
                                                          items_per_thread=4))
        a_np = np.ones((4, 137), dtype=np.float32)
        b_np = np.full(4, np.nan, dtype=np.float32)
        _run_task(module, [a_np, b_np])
        np.testing.assert_allclose(b_np, 137.0)

    def test_template_compatibility_check(self):
        assert is_last_axis_reduction(self._sum_task(4, 64))
        a = tensor_input('A', 'float32', [8])
        elementwise = Task('e', [a], compute('B', [8], lambda i: a[i]))
        assert not is_last_axis_reduction(elementwise)
        with pytest.raises(ComputeLoweringError):
            build_reduce_module(elementwise, ReduceSchedule())

    def test_reduce_schedule_validity(self):
        assert ReduceSchedule(block_size=256).is_valid()
        assert not ReduceSchedule(block_size=96).is_valid()     # not a power of two
        assert not ReduceSchedule(block_size=16).is_valid()     # below a warp

    def test_stats_shape(self):
        task = self._sum_task(32, 512)
        (stats,) = reduce_stats(task, ReduceSchedule(block_size=128))
        assert stats.grid_blocks == 32
        assert stats.threads_per_block == 128
        assert stats.is_memory_bound_hint
