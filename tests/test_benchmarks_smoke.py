"""Tier-1 smoke coverage of every benchmark module.

Each ``benchmarks/bench_*.py`` exposes a ``smoke()`` entry: a reduced run of
the same code path the full benchmark exercises, with its own assertions,
returning the formatted report text.  This keeps the benchmark harness from
rotting between full runs — a broken experiment module fails the test suite,
not the next person who tries to reproduce a figure.
"""
import importlib
import pathlib
import sys
import time

import pytest

BENCH_DIR = pathlib.Path(__file__).resolve().parent.parent / 'benchmarks'

BENCH_MODULES = sorted(p.stem for p in BENCH_DIR.glob('bench_*.py'))


@pytest.fixture(scope='module', autouse=True)
def _bench_on_path():
    sys.path.insert(0, str(BENCH_DIR))
    try:
        yield
    finally:
        sys.path.remove(str(BENCH_DIR))


def test_every_benchmark_has_a_smoke_mode():
    assert BENCH_MODULES, 'no benchmark modules found'
    missing = [name for name in BENCH_MODULES
               if not hasattr(importlib.import_module(name), 'smoke')]
    assert not missing, f'benchmarks without smoke(): {missing}'


@pytest.mark.parametrize('module_name',
                         [m for m in BENCH_MODULES if m != 'bench_serving'])
def test_benchmark_smoke(module_name):
    module = importlib.import_module(module_name)
    text = module.smoke()
    assert isinstance(text, str) and text.strip(), (
        f'{module_name}.smoke() must return a non-empty report')


def test_bench_serving_smoke_cli_budget():
    """The --smoke acceptance: a 200-request trace must finish in <10s."""
    module = importlib.import_module('bench_serving')
    start = time.monotonic()
    text = module.smoke()
    elapsed = time.monotonic() - start
    assert 'throughput' in text
    assert elapsed < 10.0, f'bench_serving --smoke took {elapsed:.1f}s'


def test_bench_serving_fleet_smoke_budget():
    """The --smoke --fleet acceptance: the reduced fleet experiments
    (placement comparison, cross-device warm-up, SLO sizing) must pass
    their claims and finish in <10s."""
    module = importlib.import_module('bench_serving')
    start = time.monotonic()
    text = module.fleet_smoke()
    elapsed = time.monotonic() - start
    for token in ('Placement comparison', 'Cross-device warm-up',
                  'Fleet sizing', 'MEETS SLO'):
        assert token in text
    assert elapsed < 10.0, f'bench_serving --smoke --fleet took {elapsed:.1f}s'
