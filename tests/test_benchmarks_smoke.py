"""Tier-1 smoke coverage of every benchmark module.

Each ``benchmarks/bench_*.py`` exposes a ``smoke()`` entry: a reduced run of
the same code path the full benchmark exercises, with its own assertions,
returning the formatted report text.  This keeps the benchmark harness from
rotting between full runs — a broken experiment module fails the test suite,
not the next person who tries to reproduce a figure.

Every smoke run also carries a **wall-clock budget**: smoke modes exist so
the whole harness fits in tier-1, and a smoke that silently grows into a
minutes-long run defeats that.  The serving-family entries keep their
documented ten-second acceptance budget; everything else gets a generous
default (the slowest smoke today runs ~6s) that still catches runaway
growth.
"""
import importlib
import pathlib
import sys
import time

import pytest

BENCH_DIR = pathlib.Path(__file__).resolve().parent.parent / 'benchmarks'

BENCH_MODULES = sorted(p.stem for p in BENCH_DIR.glob('bench_*.py'))

#: wall-clock seconds a smoke() run may take.  The default is a runaway
#: backstop, not a perf target: ~10x the slowest smoke today (~6s), so a
#: loaded CI machine does not flake but a smoke that grows into a
#: minutes-long run still fails loudly.  The serving family keeps its
#: documented ten-second acceptance budget (README / bench_serving --smoke).
DEFAULT_SMOKE_BUDGET_SECONDS = 60.0
SMOKE_BUDGET_SECONDS = {
    'bench_serving': 10.0,
    # the tuning smoke compiles the whole zoo twice (guided vs exhaustive —
    # the cost-model acceptance claim covers every model) plus three
    # tuning-service runs; ~2.5 minutes of honest work, budgeted at 2x
    'bench_fig17_tuning_cost': 300.0,
}


@pytest.fixture(scope='module', autouse=True)
def _bench_on_path():
    sys.path.insert(0, str(BENCH_DIR))
    try:
        yield
    finally:
        sys.path.remove(str(BENCH_DIR))


def _run_budgeted(module_name: str, entry: str = 'smoke') -> str:
    """Run one smoke entry under its wall-clock budget; returns the text."""
    module = importlib.import_module(module_name)
    budget = SMOKE_BUDGET_SECONDS.get(module_name,
                                      DEFAULT_SMOKE_BUDGET_SECONDS)
    start = time.monotonic()
    text = getattr(module, entry)()
    elapsed = time.monotonic() - start
    assert elapsed < budget, (
        f'{module_name}.{entry}() took {elapsed:.1f}s, over its '
        f'{budget:.0f}s smoke budget')
    return text


def test_every_benchmark_has_a_smoke_mode():
    assert BENCH_MODULES, 'no benchmark modules found'
    missing = [name for name in BENCH_MODULES
               if not hasattr(importlib.import_module(name), 'smoke')]
    assert not missing, f'benchmarks without smoke(): {missing}'


@pytest.mark.parametrize('module_name',
                         [m for m in BENCH_MODULES if m != 'bench_serving'])
def test_benchmark_smoke(module_name):
    text = _run_budgeted(module_name)
    assert isinstance(text, str) and text.strip(), (
        f'{module_name}.smoke() must return a non-empty report')


def test_bench_serving_smoke_cli_budget():
    """The --smoke acceptance: a 200-request trace must finish in <10s."""
    text = _run_budgeted('bench_serving')
    assert 'throughput' in text


def test_bench_serving_decode_smoke_budget():
    """The --decode --smoke acceptance: continuous batching must beat
    request-level batching on token throughput at equal-or-better p99,
    reservation admission must hold the decode SLO the unbounded ablation
    violates, and the run must finish in <10s."""
    text = _run_budgeted('bench_serving', 'decode_smoke')
    for token in ('continuous batching', 'swap-penalized steps',
                  'continuous-over-request-level token throughput'):
        assert token in text


def test_bench_serving_fleet_smoke_budget():
    """The --smoke --fleet acceptance: the reduced fleet experiments
    (placement comparison, cross-device warm-up, SLO sizing) must pass
    their claims and finish in <10s."""
    text = _run_budgeted('bench_serving', 'fleet_smoke')
    for token in ('Placement comparison', 'Cross-device warm-up',
                  'Fleet sizing', 'MEETS SLO'):
        assert token in text


def test_bench_serving_packing_smoke_budget():
    """The --smoke --packing acceptance: memory-aware placement must serve
    the same p99 SLO on strictly fewer replicas than memory-blind
    least-loaded, the seeded failover must re-home orphans without
    overflowing any survivor's DRAM, and the run must finish in <10s."""
    text = _run_budgeted('bench_serving', 'packing_smoke')
    for token in ('Memory-aware packing', 'MEETS SLO', 'packing saves',
                  're-homes', 'survivors within DRAM: yes'):
        assert token in text


def test_bench_serving_lifecycle_smoke_budget():
    """The --smoke --lifecycle acceptance: the reduced lifecycle
    experiments must pass their claims (autoscaled diurnal run meets the
    p99 SLO at fewer replica-seconds than the static optimum; warm
    scale-up beats cold on tuning-seconds-to-SLO) and finish in <10s."""
    text = _run_budgeted('bench_serving', 'lifecycle_smoke')
    for token in ('Diurnal autoscaling', 'MEETS SLO', 'autoscaling saves',
                  'Warm vs cold scale-up', 'device-transfer hits'):
        assert token in text
