"""Error-path coverage of the shared string-keyed FactoryRegistry.

The placement and autoscale registries (and any third-party one) share
these mechanics; the public ``register_* / make_*`` wrappers only cover
the happy path, so the contract — loud unknown-name errors, conflict
detection on re-registration, option forwarding — is pinned here.
"""
import pytest

from repro.serve._registry import FactoryRegistry


@pytest.fixture
def registry():
    return FactoryRegistry(kind='widget', hint='register_widget()')


class _Widget:
    def __init__(self, size=1, color='red'):
        self.size = size
        self.color = color


def test_make_unknown_name_names_kind_and_hint(registry):
    registry.register('a', _Widget)
    with pytest.raises(ValueError) as err:
        registry.make('nope')
    # the error must identify what was asked, what exists, and how to add
    msg = str(err.value)
    assert "widget 'nope'" in msg
    assert "['a']" in msg
    assert 'register_widget()' in msg


def test_register_non_callable_raises(registry):
    with pytest.raises(TypeError):
        registry.register('a', 42)
    assert 'a' not in registry


def test_same_factory_reregistration_is_a_noop(registry):
    registry.register('a', _Widget)
    registry.register('a', _Widget)          # idempotent, no error
    assert registry.available() == ['a']


def test_conflicting_reregistration_raises(registry):
    registry.register('a', _Widget)
    with pytest.raises(ValueError, match='already registered'):
        registry.register('a', lambda: _Widget())
    # the original factory survives the failed attempt
    assert isinstance(registry.make('a'), _Widget)


def test_options_forward_to_the_factory(registry):
    registry.register('a', _Widget)
    widget = registry.make('a', size=3, color='blue')
    assert (widget.size, widget.color) == (3, 'blue')


def test_make_returns_fresh_instances(registry):
    registry.register('a', _Widget)
    assert registry.make('a') is not registry.make('a')


def test_contains_and_available(registry):
    assert 'a' not in registry
    registry.register('b', _Widget)
    registry.register('a', _Widget)
    assert 'a' in registry and 'b' in registry
    assert registry.available() == ['a', 'b']    # sorted


def test_public_registries_reject_unknown_names():
    # the wrappers route through the same mechanics; spot-check both
    from repro.serve import make_placement, make_autoscale_policy
    with pytest.raises(ValueError, match='unknown placement'):
        make_placement('no_such_policy')
    with pytest.raises(ValueError, match='unknown autoscale'):
        make_autoscale_policy('no_such_policy')
