"""The declarative deployment API: spec round-trips, validation, façade.

Three contracts are pinned here:

* **round-trip fidelity** — ``DeploymentSpec.from_json(spec.to_json()) ==
  spec`` for a spec exercising every node type, and a :class:`Deployment`
  built from the round-tripped spec reproduces the byte-identical
  ``format_fleet_report`` on a seeded trace (a deployment *is* its spec);
* **actionable validation** — every rejection is a
  :class:`SpecValidationError` whose ``field`` names the offending field;
* **pluggability** — placement/autoscale policies and devices are
  string-keyed registries third parties extend without touching core.
"""
import dataclasses
import os

import pytest

from repro.gpusim.device import DeviceSpec, LAPTOP_GPU, RTX3090
from repro.serve import (AutoscaleSpec, BatchingPolicy, BatchingSpec,
                         CacheSpec, DecodeSpec, Deployment, DeploymentSpec,
                         FailureSpec,
                         FleetSimulator, ModelSpec, PlacementPolicy,
                         PlacementSpec, ReplicaGroupSpec, ServerSimulator,
                         SpecValidationError, format_fleet_report,
                         poisson_trace, register_autoscale_policy,
                         register_device, register_placement)
from repro.serve.deployment import main as deployment_main
from repro.serve.lifecycle import AutoscalePolicy, FailureEvent

TINY_BERT = {'layers': 1, 'seq_length': 16, 'vocab_size': 500,
             'hidden': 32, 'heads': 2}
TINY_GPT2 = {'layers': 1, 'seq_length': 16, 'vocab_size': 500,
             'hidden': 48, 'heads': 4}


def tiny_spec(**overrides) -> DeploymentSpec:
    """A fast two-model, two-replica spec; kwargs override spec fields."""
    base = dict(
        models=(ModelSpec('bert', max_batch=2, buckets=(1, 2),
                          config=TINY_BERT),
                ModelSpec('gpt2', max_batch=2, buckets=(1, 2),
                          config=TINY_GPT2)),
        replicas=(ReplicaGroupSpec('RTX3090', count=2),),
        batching=BatchingSpec(max_batch=2, max_wait=1e-3, max_queue=64),
        placement=PlacementSpec('model_affine'),
    )
    base.update(overrides)
    return DeploymentSpec(**base)


def full_spec() -> DeploymentSpec:
    """A spec populating every node type (autoscale, failures, cache)."""
    return tiny_spec(
        autoscale=AutoscaleSpec(
            policy='scheduled_diurnal',
            options={'schedule': [[0.0, 2], [0.05, 3]]},
            min_replicas=1, max_replicas=4, interval=0.01, cooldown=0.0,
            scale_increment=2, provision_delay=0.001, device='LaptopGPU'),
        failures=FailureSpec(
            events=(FailureEvent(time=0.02, replica=0, revive_at=0.04),)),
        cache=CacheSpec(warm_from='w.json', save_to='s.json', max_entries=32,
                        enable_transfer=True, enable_device_transfer=True))


class TestRoundTrip:
    def test_full_spec_round_trips_through_json(self):
        spec = full_spec()
        restored = DeploymentSpec.from_json(spec.to_json())
        assert restored == spec
        assert spec.diff(restored) == {}

    def test_seeded_failures_and_defaults_round_trip(self):
        spec = tiny_spec(failures=FailureSpec(num_failures=3, num_replicas=2,
                                              span=0.5, seed=9, mttr=0.1))
        assert DeploymentSpec.from_json(spec.to_json()) == spec
        minimal = DeploymentSpec(models=(ModelSpec('bert'),))
        assert DeploymentSpec.from_json(minimal.to_json()) == minimal

    def test_tuple_and_list_specs_are_one_canonical_value(self):
        """JSON hands back lists; a spec built with tuples must compare
        equal to its round-trip, so sequence-valued options canonicalize."""
        a = tiny_spec(autoscale=AutoscaleSpec(
            policy='scheduled_diurnal', max_replicas=4,
            options={'schedule': ((0.0, 1), (0.1, 2))}))
        b = tiny_spec(autoscale=AutoscaleSpec(
            policy='scheduled_diurnal', max_replicas=4,
            options={'schedule': [[0.0, 1], [0.1, 2]]}))
        assert a == b
        assert DeploymentSpec.from_json(a.to_json()) == a

    def test_failure_event_mappings_are_coerced(self):
        spec = FailureSpec(events=({'time': 0.1, 'replica': 1},))
        assert spec.events == (FailureEvent(time=0.1, replica=1),)

    def test_decode_node_round_trips_and_coerces_mappings(self):
        decode = DecodeSpec(kv_bytes_per_token=73728, max_tokens=64,
                            max_width=4, admission='unbounded',
                            kv_capacity_bytes=16 << 20, seq_length=32)
        spec = tiny_spec(models=(
            ModelSpec('bert', max_batch=2, buckets=(1, 2), config=TINY_BERT),
            ModelSpec('gpt2', max_batch=2, buckets=(1, 2), config=TINY_GPT2,
                      decode=decode)))
        restored = DeploymentSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.models[1].decode == decode
        assert spec.validate() is spec
        # JSON hands the node back as a mapping; ModelSpec coerces it
        as_mapping = ModelSpec('gpt2', max_batch=2, buckets=(1, 2),
                               decode={'kv_bytes_per_token': 64})
        assert as_mapping.decode == DecodeSpec(kv_bytes_per_token=64)
        # an unknown decode key names the field instead of leaking TypeError
        with pytest.raises(SpecValidationError, match='decode'):
            ModelSpec('gpt2', decode={'kv_bytes_per_tok': 64})

    def test_round_tripped_spec_reproduces_identical_fleet_result(self):
        """The acceptance claim: spec → JSON → spec → run is byte-identical
        to running the original spec on the same seeded trace."""
        trace = poisson_trace(qps=4000, num_requests=200,
                              models=['bert', 'gpt2'], seed=3)
        original = Deployment(tiny_spec())
        restored = Deployment.from_json(original.to_json())
        report_a = format_fleet_report(original.run(trace), 'ab')
        report_b = format_fleet_report(restored.run(trace), 'ab')
        assert report_a == report_b
        assert 'per replica' in report_a

    def test_from_dict_rejects_unknown_and_versioned_input(self):
        good = tiny_spec().to_dict()
        with pytest.raises(SpecValidationError, match='bogus'):
            DeploymentSpec.from_dict({**good, 'bogus': 1})
        with pytest.raises(SpecValidationError, match=r'models\[0\]'):
            DeploymentSpec.from_dict({**good, 'models': [None]})
        with pytest.raises(SpecValidationError, match=r'replicas\[1\]'):
            DeploymentSpec.from_dict(
                {**good, 'replicas': [{'device': 'RTX3090'}, None]})
        with pytest.raises(SpecValidationError) as excinfo:
            DeploymentSpec.from_dict(
                {**good, 'failures': {'events': [None]}})
        # the nested error's precise field survives the outer _node wrap
        assert excinfo.value.field == 'failures.events[0]'

    def test_from_dict_rejects_explicit_null_for_required_nodes(self):
        """'\"placement\": null' is a templating bug, not a request for
        defaults — only autoscale/failures are legitimately null."""
        good = tiny_spec().to_dict()
        for key in ('models', 'replicas', 'batching', 'placement', 'cache'):
            with pytest.raises(SpecValidationError) as excinfo:
                DeploymentSpec.from_dict({**good, key: None})
            assert excinfo.value.field == key
        spec = DeploymentSpec.from_dict(
            {**good, 'autoscale': None, 'failures': None})
        assert spec.autoscale is None and spec.failures is None
        with pytest.raises(SpecValidationError, match='version'):
            DeploymentSpec.from_dict({**good, 'version': 99})
        for sneaky in (True, 1.0, '1'):     # bool/float/str never pass as 1
            with pytest.raises(SpecValidationError, match='version'):
                DeploymentSpec.from_dict({**good, 'version': sneaky})
        with pytest.raises(SpecValidationError, match='batching.nope'):
            DeploymentSpec.from_dict(
                {**good, 'batching': {'max_batch': 2, 'nope': 1}})
        with pytest.raises(SpecValidationError, match='spec'):
            DeploymentSpec.from_json('not json at all')

    def test_diff_names_the_changed_knob(self):
        base = tiny_spec()
        candidate = dataclasses.replace(
            base, batching=BatchingSpec(max_batch=2, max_wait=5e-4,
                                        max_queue=64))
        assert base.diff(candidate) == {'batching.max_wait': (1e-3, 5e-4)}
        grown = dataclasses.replace(
            base, replicas=(ReplicaGroupSpec('RTX3090', count=3),))
        assert base.diff(grown) == {'replicas[0].count': (2, 3)}


class TestValidation:
    @pytest.mark.parametrize('overrides,field', [
        (dict(models=()), 'models'),
        (dict(models=(ModelSpec('bert', max_batch=2, buckets=(1, 2)),
                      ModelSpec('bert', max_batch=2, buckets=(1, 2)))),
         'models[1].name'),
        (dict(models=(ModelSpec('bert', max_batch=0),)),
         'models[0].max_batch'),
        (dict(models=(ModelSpec('bert', max_batch=2, buckets=(0, 2)),)),
         'models[0].buckets'),
        (dict(models=(ModelSpec('bert', max_batch=2, buckets=(1,)),)),
         'batching.max_batch'),
        (dict(batching=BatchingSpec(max_batch=2, max_queue=1)), 'batching'),
        (dict(replicas=()), 'replicas'),
        (dict(replicas=(ReplicaGroupSpec('RTX3090', count=0),)),
         'replicas[0].count'),
        (dict(replicas=(ReplicaGroupSpec('TPUv9'),)), 'replicas[0].device'),
        (dict(placement=PlacementSpec('warmest_gpu')), 'placement.policy'),
        (dict(placement=PlacementSpec('model_affine',
                                      {'no_such_knob': 1})),
         'placement.options'),
        (dict(autoscale=AutoscaleSpec(policy='vibes', max_replicas=4)),
         'autoscale.policy'),
        (dict(autoscale=AutoscaleSpec(policy='queue_depth', max_replicas=4,
                                      options={'no_such_knob': 1})),
         'autoscale.options'),
        (dict(autoscale=AutoscaleSpec(max_replicas=4, cooldown=-1.0)),
         'autoscale'),
        (dict(autoscale=AutoscaleSpec(min_replicas=3, max_replicas=4)),
         'autoscale.min_replicas'),
        (dict(autoscale=AutoscaleSpec(max_replicas=1)),
         'autoscale.max_replicas'),
        (dict(autoscale=AutoscaleSpec(max_replicas=4, device='TPUv9')),
         'autoscale.device'),
        (dict(failures=FailureSpec(events=(FailureEvent(0.1, 0),),
                                   num_failures=1)), 'failures'),
        (dict(failures=FailureSpec(events=(FailureEvent(0.1, 0),),
                                   mttr=0.25)), 'failures'),
        (dict(failures=FailureSpec(events=(FailureEvent(0.1, 0),),
                                   seed=7)), 'failures'),
        (dict(failures=FailureSpec(num_failures=1, span=0.5)),
         'failures.num_replicas'),
        (dict(failures=FailureSpec(num_failures=1, num_replicas=2)),
         'failures.span'),
        (dict(failures=FailureSpec(num_failures=1, num_replicas=2, span=0.5,
                                   mttr=0.0)), 'failures.mttr'),
        (dict(cache=CacheSpec(max_entries=0)), 'cache.max_entries'),
        # wrong-typed JSON scalars must name the field, not leak TypeError
        (dict(models=(ModelSpec('bert', max_batch='8'),)),
         'models[0].max_batch'),
        (dict(replicas=(ReplicaGroupSpec('RTX3090', count='2'),)),
         'replicas[0].count'),
        (dict(batching=BatchingSpec(max_batch=2, max_wait='soon')),
         'batching.max_wait'),
        # the batching node is vetted before the ladder comparison loop
        (dict(batching=BatchingSpec(max_batch='8')), 'batching.max_batch'),
        # bool subclasses int and must not pass where an int is required
        (dict(replicas=(ReplicaGroupSpec('RTX3090', count=True),)),
         'replicas[0].count'),
        (dict(batching=BatchingSpec(max_batch=True)), 'batching.max_batch'),
        (dict(autoscale=AutoscaleSpec(max_replicas=4, interval='0.05')),
         'autoscale.interval'),
        (dict(cache=CacheSpec(warm_from=3)), 'cache.warm_from'),
        # the decode node: every rejection names its dotted field path
        (dict(models=(ModelSpec('gpt2', max_batch=2, buckets=(1, 2),
                                decode=DecodeSpec(kv_bytes_per_token=0)),)),
         'models[0].decode.kv_bytes_per_token'),
        (dict(models=(ModelSpec('gpt2', max_batch=2, buckets=(1, 2),
                                decode=DecodeSpec(kv_bytes_per_token=64,
                                                  max_tokens=0)),)),
         'models[0].decode.max_tokens'),
        (dict(models=(ModelSpec('gpt2', max_batch=2, buckets=(1, 2),
                                decode=DecodeSpec(kv_bytes_per_token=64,
                                                  admission='hopeful')),)),
         'models[0].decode.admission'),
        (dict(models=(ModelSpec('gpt2', max_batch=2, buckets=(1, 2),
                                decode=DecodeSpec(
                                    kv_bytes_per_token=64, max_tokens=16,
                                    kv_capacity_bytes=512)),)),
         'models[0].decode.kv_capacity_bytes'),
        # wrong-typed JSON scalars in the decode node name the field too
        (dict(models=(ModelSpec('gpt2', max_batch=2, buckets=(1, 2),
                                decode=DecodeSpec(
                                    kv_bytes_per_token='64')),)),
         'models[0].decode.kv_bytes_per_token'),
        (dict(models=(ModelSpec('gpt2', max_batch=2, buckets=(1, 2),
                                decode=DecodeSpec(kv_bytes_per_token=64,
                                                  max_width=True)),)),
         'models[0].decode.max_width'),
    ])
    def test_each_error_path_names_the_offending_field(self, overrides, field):
        with pytest.raises(SpecValidationError) as excinfo:
            tiny_spec(**overrides).validate()
        assert excinfo.value.field == field
        assert str(excinfo.value).startswith(field + ':')

    def test_non_spec_elements_are_rejected_with_field_paths(self):
        with pytest.raises(SpecValidationError) as excinfo:
            tiny_spec(models=(ModelSpec('bert', max_batch=2, buckets=(1, 2)),
                              None)).validate()
        assert excinfo.value.field == 'models[1]'
        with pytest.raises(SpecValidationError) as excinfo:
            tiny_spec(replicas=('RTX3090',)).validate()
        assert excinfo.value.field == 'replicas[0]'

    def test_deployment_validates_at_construction(self):
        with pytest.raises(SpecValidationError, match='placement.policy'):
            Deployment(tiny_spec(placement=PlacementSpec('warmest_gpu')))

    def test_builders_for_unknown_models_are_rejected(self):
        with pytest.raises(SpecValidationError, match='builders'):
            Deployment(tiny_spec(), builders={'resnet51': lambda b: None})

    def test_non_zoo_model_without_builder_fails_fast(self):
        """A misspelled zoo name must surface at construction as a
        field-named error, not as a KeyError mid-compile."""
        spec = tiny_spec(models=(ModelSpec('resnet51', max_batch=2,
                                           buckets=(1, 2)),))
        with pytest.raises(SpecValidationError) as excinfo:
            Deployment(spec)
        assert excinfo.value.field == 'models[0].name'
        # the same name with a builder is fine — that is the escape hatch
        Deployment(spec, builders={'resnet51': lambda b: None})

    def test_buckets_reject_strings_and_floats(self):
        """int() coercion would parse \"12\" into the ladder (1, 2) and
        truncate floats; both must be loud errors instead."""
        with pytest.raises(ValueError, match='sequence of ints'):
            ModelSpec('bert', buckets='12')
        with pytest.raises(ValueError, match='must be ints'):
            ModelSpec('bert', buckets=(2.5,))
        good = tiny_spec().to_dict()
        good['models'][0]['buckets'] = '12'
        with pytest.raises(SpecValidationError, match=r'models\[0\]'):
            DeploymentSpec.from_dict(good)

    def test_valid_spec_validates_and_chains(self):
        spec = full_spec()
        assert spec.validate() is spec


class TestRegistries:
    def test_custom_placement_plugs_in_by_name(self):
        class FirstHostPlacement(PlacementPolicy):
            name = 'first_host'

            def choose(self, request, hosts, fleet, now):
                return hosts[0]

        register_placement('first_host', FirstHostPlacement)
        register_placement('first_host', FirstHostPlacement)   # idempotent
        spec = tiny_spec(placement=PlacementSpec('first_host'))
        deployment = Deployment(spec).build()
        assert type(deployment.fleet.placement) is FirstHostPlacement
        with pytest.raises(ValueError, match='already registered'):
            register_placement('first_host', PlacementPolicy)

    def test_custom_autoscale_policy_plugs_in_by_name(self):
        class HoldSteady(AutoscalePolicy):
            name = 'hold_steady'

            def desired_replicas(self, view, now, active):
                return active

        register_autoscale_policy('hold_steady', HoldSteady)
        spec = tiny_spec(autoscale=AutoscaleSpec(policy='hold_steady',
                                                 max_replicas=4))
        assert spec.validate() is spec
        with pytest.raises(ValueError, match='already registered'):
            register_autoscale_policy('hold_steady', AutoscalePolicy)

    def test_device_registry_guards_against_rebinding(self):
        custom = DeviceSpec(name='TestPart', num_sms=4)
        register_device(custom)
        register_device(custom)                                # idempotent
        tiny_spec(replicas=(ReplicaGroupSpec('TestPart'),)).validate()
        with pytest.raises(ValueError, match='already registered'):
            register_device(DeviceSpec(name='TestPart', num_sms=8))

    def test_experiments_accept_parameter_tweaked_stock_devices(self):
        """A DeviceSpec that reuses a stock name with different parameters
        (the natural way to sweep hardware knobs) must get a derived
        registry name instead of colliding with the registered original."""
        from repro.experiments.fleet import _device_name, run_device_transfer
        tweaked = dataclasses.replace(LAPTOP_GPU, num_sms=96)
        name = _device_name(tweaked)
        assert name != LAPTOP_GPU.name
        assert _device_name(tweaked) == name               # stable
        assert _device_name(LAPTOP_GPU) == LAPTOP_GPU.name  # original intact
        report = run_device_transfer(model='bert', buckets=(1, 2),
                                     target=tweaked, smoke=True)
        assert report.target_device == name
        assert report.device_transfer_hits > 0


class TestDeploymentFacade:
    def test_cache_save_to_makes_the_next_deployment_free(self, tmp_path):
        path = str(tmp_path / 'schedules.json')
        spec = tiny_spec(cache=CacheSpec(save_to=path))
        donor = Deployment(spec).build()
        assert os.path.exists(path)
        assert donor.fleet.total_compile_seconds > 0
        warm = Deployment(
            tiny_spec(cache=CacheSpec(warm_from=path))).build()
        assert warm.fleet.total_compile_seconds == 0.0

    def test_lifecycle_specs_rebuild_per_run_and_replay_identically(self):
        spec = tiny_spec(
            replicas=(ReplicaGroupSpec('RTX3090', count=2),),
            failures=FailureSpec(
                events=(FailureEvent(time=0.01, replica=0),)))
        trace = poisson_trace(qps=4000, num_requests=150,
                              models=['bert', 'gpt2'], seed=5)
        deployment = Deployment(spec)
        first = format_fleet_report(deployment.run(trace), 'replay')
        fleet_a = deployment.fleet
        second = format_fleet_report(deployment.run(trace), 'replay')
        assert deployment.fleet is not fleet_a   # fresh fleet per mutation
        assert first == second                   # deterministic replay

    def test_report_requires_a_run(self):
        deployment = Deployment(tiny_spec())
        with pytest.raises(RuntimeError, match='run'):
            deployment.report()


class TestCli:
    def test_validate_accepts_a_good_spec_file(self, tmp_path, capsys):
        path = tmp_path / 'spec.json'
        path.write_text(full_spec().to_json())
        assert deployment_main(['--validate', str(path)]) == 0
        out = capsys.readouterr().out
        assert out.startswith('OK:') and 'scheduled_diurnal' in out

    def test_validate_rejects_a_bad_spec_naming_the_field(self, tmp_path,
                                                          capsys):
        path = tmp_path / 'spec.json'
        path.write_text(
            tiny_spec(placement=PlacementSpec('warmest_gpu')).to_json())
        assert deployment_main(['--validate', str(path)]) == 1
        assert 'placement.policy' in capsys.readouterr().err

    def test_validate_reports_unreadable_files(self, tmp_path, capsys):
        assert deployment_main(
            ['--validate', str(tmp_path / 'missing.json')]) == 2
        assert 'error:' in capsys.readouterr().err


class TestSatelliteFixes:
    def test_simulators_no_longer_share_a_default_policy(self):
        """The module-load-time default ``BatchingPolicy()`` was one shared
        instance across every simulator; defaults are now per-instance."""
        s1, s2 = ServerSimulator(None), ServerSimulator(None)
        assert s1.policy is not s2.policy
        f1, f2 = FleetSimulator(None), FleetSimulator(None)
        assert f1.policy is not f2.policy
        assert isinstance(f1.policy, BatchingPolicy)

    def test_top_level_package_exports_match_its_docstring(self):
        import repro
        assert callable(repro.optimize)
        assert repro.serve.DeploymentSpec is DeploymentSpec
        assert 'optimize' in repro.__all__ and 'serve' in repro.__all__
        with pytest.raises(AttributeError):
            repro.no_such_symbol
