"""Hardware-centric schedule space and the exhaustive tuner (§4.3)."""
import pytest

from repro.core.schedule import MatmulSchedule
from repro.core.space import (matmul_schedule_space, reduce_schedule_space,
                              split_k_candidates)
from repro.core.tuning import MatmulTuner
from repro.gpusim import RTX3090, SimulatedClock


class TestSpace:
    def test_size_matches_paper_ballpark(self):
        """Paper: 'less than 200 schedules' / '~180 schedules'."""
        space = matmul_schedule_space()
        assert 120 <= len(space) <= 200

    def test_all_schedules_valid_and_unique(self):
        space = matmul_schedule_space()
        assert all(s.is_valid() for s in space)
        assert len(set(space)) == len(space)

    def test_space_independent_of_input_size(self):
        """The same space serves every problem — no divisor dependence."""
        space = matmul_schedule_space()
        for sched in space[:10]:
            for size in (1024, 2039, 7):
                gx, gy, gz = sched.grid(size, size)
                assert gx * sched.block_n >= size and gy * sched.block_m >= size

    def test_split_k_candidates_only_for_small_outputs(self):
        assert split_k_candidates(4096, 4096, 4096) == [1]
        cands = split_k_candidates(196, 512, 4608)
        assert cands[0] == 1 and len(cands) > 1

    def test_reduce_space(self):
        space = reduce_schedule_space()
        assert len(space) >= 8
        assert all(s.is_valid() for s in space)


class TestTuner:
    def test_deterministic_and_cached(self):
        tuner = MatmulTuner(RTX3090)
        r1 = tuner.tune(512, 512, 512)
        charged = tuner.clock.elapsed_seconds
        r2 = tuner.tune(512, 512, 512)
        # cache hit: same answer, no new clock charges, ~0 reported seconds
        assert r2.best_schedule == r1.best_schedule
        assert r2.best_latency == r1.best_latency
        assert tuner.clock.elapsed_seconds == charged
        assert r1.tuning_seconds > 0
        assert r2.tuning_seconds == 0.0
        fresh = MatmulTuner(RTX3090).tune(512, 512, 512)
        assert fresh.best_schedule == r1.best_schedule
        assert fresh.best_latency == r1.best_latency

    def test_cache_distinguishes_spaces(self):
        tuner = MatmulTuner(RTX3090)
        db = tuner.tune(1024, 1024, 1024,
                        space=matmul_schedule_space(double_buffer=True),
                        try_split_k=False)
        sb = tuner.tune(1024, 1024, 1024,
                        space=matmul_schedule_space(double_buffer=False),
                        try_split_k=False)
        assert db.best_latency < sb.best_latency

    def test_split_k_helps_small_output_grids(self):
        tuner = MatmulTuner(RTX3090)
        base = tuner.tune(196, 512, 4608, try_split_k=False)
        with_k = tuner.tune(196, 512, 4608, try_split_k=True)
        assert with_k.best_latency < base.best_latency
        assert with_k.best_schedule.split_k > 1

    def test_large_matmul_prefers_big_tiles(self):
        tuner = MatmulTuner(RTX3090)
        best = tuner.tune(2048, 2048, 2048).best_schedule
        assert best.block_m * best.block_n >= 64 * 64
        assert best.double_buffer

    def test_tuning_charges_clock(self):
        """Exhaustive enumeration finishes in minutes (paper: 'within one
        minute of time' per matmul on a 24-thread CPU)."""
        clock = SimulatedClock()
        tuner = MatmulTuner(RTX3090, clock=clock)
        result = tuner.tune(1024, 1024, 1024)
        assert result.num_candidates >= 160
        assert 0 < result.tuning_seconds < 300
        assert clock.elapsed_seconds == result.tuning_seconds

    def test_prime_sizes_fully_supported(self):
        """Every schedule in the space handles 2039 (Figure 19)."""
        tuner = MatmulTuner(RTX3090)
        r = tuner.tune(2039, 2039, 2039)
        smooth = tuner.tune(2048, 2048, 2048)
        assert r.best_latency <= smooth.best_latency * 1.05

    def test_batch_changes_choice_economics(self):
        tuner = MatmulTuner(RTX3090)
        single = tuner.tune(128, 768, 768, batch=1)
        batched = tuner.tune(128, 768, 768, batch=12)
        assert batched.best_latency > single.best_latency
        assert batched.best_latency < 12 * single.best_latency
