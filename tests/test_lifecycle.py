"""Fleet lifecycle: diurnal traces, autoscaling guard rails, replica
failures (re-homing, requeue/loss accounting), and drain-before-retire.
"""
import pytest

from repro.graph import ops, symbol, trace
from repro.gpusim.device import RTX3090
from repro.models.common import WeightFactory, conv_bn_relu, linear
from repro.runtime import ScheduleCache
from repro.serve import (Autoscaler, AutoscalerConfig, BatchingPolicy,
                         DynamicBatcher, FailureEvent, FailureInjector, Fleet,
                         FleetSimulator, LeastLoadedPlacement,
                         ModelAffinePlacement, P99TargetPolicy,
                         QueueDepthPolicy, RoundRobinPlacement,
                         ScheduledDiurnalPolicy, diurnal_trace, poisson_trace)


def tiny_cnn(batch: int):
    x = symbol([batch, 4, 12, 12], name='x')
    wf = WeightFactory(5)
    y = conv_bn_relu(wf, x, 8, kernel=3, padding=1, name='c1')
    return trace(ops.global_avg_pool(y), name=f'cnn_b{batch}')


def tiny_mlp(batch: int):
    x = symbol([batch, 32], name='x')
    wf = WeightFactory(9)
    y = ops.relu(linear(wf, x, 64, name='fc1'))
    return trace(linear(wf, y, 8, name='fc2'), name=f'mlp_b{batch}')


def two_model_fleet(placement, n=2, **kwargs) -> Fleet:
    fleet = Fleet([RTX3090] * n, placement=placement, **kwargs)
    fleet.register('cnn', tiny_cnn, max_batch=8)
    fleet.register('mlp', tiny_mlp, max_batch=8)
    return fleet


def conserved(trace_, result) -> bool:
    """Nothing is ever silently dropped: every request is accounted for."""
    return len(trace_) == (len(result.completions) + len(result.rejected)
                           + len(result.lost))


# ---------------------------------------------------------------------------
# diurnal traces


class TestDiurnalTrace:
    def test_deterministic_and_bounded(self):
        kwargs = dict(base_qps=100, peak_qps=5000, period=0.2, duration=0.4,
                      models=['m'], seed=3)
        a, b = diurnal_trace(**kwargs), diurnal_trace(**kwargs)
        assert [r.arrival for r in a] == [r.arrival for r in b]
        assert all(0 <= r.arrival < 0.4 for r in a)
        assert [r.req_id for r in a] == list(range(len(a)))

    def test_rate_swells_at_the_crest(self):
        reqs = diurnal_trace(base_qps=50, peak_qps=5000, period=1.0,
                             duration=1.0, models=['m'], seed=0)
        crest = sum(1 for r in reqs if 0.4 <= r.arrival < 0.6)
        trough = sum(1 for r in reqs if r.arrival < 0.1
                     or r.arrival >= 0.9)
        assert crest > 5 * trough

    def test_validation(self):
        with pytest.raises(ValueError, match='base_qps'):
            diurnal_trace(0, 10, 1.0, 1.0, ['m'])
        with pytest.raises(ValueError, match='base_qps'):
            diurnal_trace(20, 10, 1.0, 1.0, ['m'])
        with pytest.raises(ValueError, match='period and duration'):
            diurnal_trace(1, 10, 0.0, 1.0, ['m'])


# ---------------------------------------------------------------------------
# autoscaler guard rails (policy unit level)


class _View:
    """Stub load view for policy unit tests."""

    def __init__(self, depths=None, p99=None):
        self.depths = depths if depths is not None else {0: 0}
        self.p99 = p99

    def serving_replicas(self):
        return sorted(self.depths)

    def queued_samples(self, replica):
        return self.depths[replica]

    def backlog_seconds(self, replica, now):
        return 0.0

    def recent_p99_ms(self, now, window):
        return self.p99


class TestAutoscalerGuardRails:
    def test_cooldown_prevents_flapping(self):
        # the queue oscillates around the thresholds every tick; without a
        # cooldown the scaler would act every tick, with one it must not
        scaler = Autoscaler(QueueDepthPolicy(scale_up_depth=10,
                                             scale_down_depth=1),
                            AutoscalerConfig(min_replicas=1, max_replicas=8,
                                             interval=0.01, cooldown=0.1))
        actions = []
        active = 2
        for tick in range(100):
            now = tick * 0.01
            view = _View({r: (50 if tick % 2 else 0) for r in range(active)})
            target = scaler.decide(view, now, active)
            if target != active:
                scaler.record_action(now)    # the fleet acts on the wish
                actions.append(now)
                active = target
        assert actions, 'the scaler never acted at all'
        gaps = [b - a for a, b in zip(actions, actions[1:])]
        assert all(gap >= 0.1 - 1e-12 for gap in gaps), (
            f'actions inside the cooldown window: {actions}')

    def test_blocked_wish_does_not_burn_the_cooldown(self):
        # a scale-down wish the fleet cannot satisfy (sole-host guard) is
        # never record_action()ed, so a genuine scale-up wish right after
        # must go through instead of being cooldown-suppressed
        scaler = Autoscaler(QueueDepthPolicy(scale_up_depth=10,
                                             scale_down_depth=1),
                            AutoscalerConfig(min_replicas=1, max_replicas=4,
                                             cooldown=1.0))
        wish_down = scaler.decide(_View({0: 0, 1: 0}), 0.0, 2)
        assert wish_down == 1                # down-wish issued...
        # ...but the fleet found no safe victim: no record_action call
        spike = scaler.decide(_View({0: 50, 1: 50}), 0.01, 2)
        assert spike == 3, 'the scale-up wish must not be cooldown-blocked'

    def test_bounds_and_increment_clamp(self):
        scaler = Autoscaler(ScheduledDiurnalPolicy([(0.0, 10)]),
                            AutoscalerConfig(min_replicas=1, max_replicas=4,
                                             cooldown=0.0, scale_increment=2))
        assert scaler.decide(_View(), 0.0, 1) == 3     # +2, not +9
        assert scaler.decide(_View(), 1.0, 3) == 4     # capped at max
        down = Autoscaler(ScheduledDiurnalPolicy([(0.0, 1)]),
                          AutoscalerConfig(min_replicas=2, max_replicas=8,
                                           cooldown=0.0))
        assert down.decide(_View(), 0.0, 2) == 2       # floored at min

    def test_scheduled_policy_is_a_step_function(self):
        policy = ScheduledDiurnalPolicy([(0.0, 1), (1.0, 3), (2.0, 2)])
        assert policy.desired_replicas(None, 0.5, 9) == 1
        assert policy.desired_replicas(None, 1.0, 9) == 3
        assert policy.desired_replicas(None, 5.0, 9) == 2

    def test_p99_policy_scales_on_the_window(self):
        policy = P99TargetPolicy(target_p99_ms=2.0, headroom=0.5)
        assert policy.desired_replicas(_View(p99=None), 0.0, 2) == 2
        assert policy.desired_replicas(_View(p99=5.0), 0.0, 2) == 3
        assert policy.desired_replicas(_View(p99=0.5), 0.0, 2) == 1
        assert policy.desired_replicas(_View(p99=1.5), 0.0, 2) == 2

    def test_policy_validation(self):
        with pytest.raises(ValueError, match='dead band'):
            QueueDepthPolicy(scale_up_depth=4, scale_down_depth=4)
        with pytest.raises(ValueError, match='at least one'):
            ScheduledDiurnalPolicy([])
        with pytest.raises(ValueError, match='>= 1 replica'):
            ScheduledDiurnalPolicy([(0.0, 0)])
        with pytest.raises(ValueError, match='min_replicas'):
            AutoscalerConfig(min_replicas=3, max_replicas=2)
        with pytest.raises(ValueError, match='revive_at'):
            FailureEvent(time=1.0, replica=0, revive_at=0.5)
        with pytest.raises(ValueError, match='non-negative index'):
            FailureEvent(time=1.0, replica=-1)


# ---------------------------------------------------------------------------
# failures: re-homing, requeue/loss accounting, determinism


@pytest.fixture()
def affine_trace():
    return poisson_trace(qps=20000, num_requests=600,
                         models=['cnn', 'mlp'], seed=0)


class TestFailures:
    def test_killing_the_only_host_rehomes_the_model(self, affine_trace):
        fleet = two_model_fleet(ModelAffinePlacement()).build()
        assert fleet.hosting == {'cnn': (0,), 'mlp': (1,)}
        kill_at = affine_trace[len(affine_trace) // 2].arrival
        sim = FleetSimulator(fleet, BatchingPolicy(max_batch=8, max_wait=1e-3),
                             failures=[FailureEvent(time=kill_at, replica=0)])
        result = sim.run(affine_trace)
        assert conserved(affine_trace, result)
        rehomes = [e for e in result.events if e.kind == 'rehome']
        assert rehomes and rehomes[0].replica == 1
        assert rehomes[0].detail == 'cnn'
        assert 1 in fleet.hosting['cnn']
        assert result.rehome_tuning_seconds > 0      # compiled mid-run, cold
        # cnn requests arriving after the kill complete on the new home
        late_cnn = [c for c in result.completions
                    if c.request.model == 'cnn' and c.request.arrival > kill_at]
        assert late_cnn and all(c.replica == 1 for c in late_cnn)

    def test_killing_the_last_replica_loses_loudly(self, affine_trace):
        fleet = Fleet([RTX3090], placement=RoundRobinPlacement())
        fleet.register('cnn', tiny_cnn, max_batch=8)
        cnn_only = [r for r in affine_trace if r.model == 'cnn']
        kill_at = cnn_only[len(cnn_only) // 2].arrival
        sim = FleetSimulator(fleet, BatchingPolicy(max_batch=8, max_wait=1e-3),
                             failures=[FailureEvent(time=kill_at, replica=0)])
        result = sim.run(cnn_only)
        assert conserved(cnn_only, result)           # never silent loss
        assert result.lost                           # ... but loss, surfaced
        stats = result.stats()
        assert stats.num_lost_to_failure == len(result.lost)
        assert stats.offered_requests == len(cnn_only)
        # the admission-control channel stays clean: these are failures
        assert stats.num_rejected == len(result.rejected)
        assert stats.loss_rate > 0

    def test_total_outage_reports_instead_of_crashing(self):
        # killing the whole fleet at t=0 completes nothing; the run must
        # still produce a report (loss_rate 1.0, NaN latencies) — loud
        # loss means a report, not a ValueError
        import math

        from repro.serve import format_serving_report

        fleet = Fleet([RTX3090], placement=RoundRobinPlacement())
        fleet.register('cnn', tiny_cnn, max_batch=8)
        trace_ = poisson_trace(qps=20000, num_requests=20, models=['cnn'],
                               seed=13)
        sim = FleetSimulator(fleet, BatchingPolicy(max_batch=8, max_wait=1e-3),
                             failures=[FailureEvent(time=0.0, replica=0)])
        result = sim.run(trace_)
        assert not result.completions and len(result.lost) == len(trace_)
        stats = result.stats()
        assert stats.loss_rate == 1.0
        assert stats.num_requests == 0 and stats.throughput_rps == 0.0
        assert math.isnan(stats.latency_p99_ms)      # undefined, not fake
        assert 'lost to failure' in format_serving_report(stats)

    def test_requeued_work_survives_with_original_arrival(self, affine_trace):
        fleet = two_model_fleet(LeastLoadedPlacement()).build()
        kill_at = affine_trace[len(affine_trace) // 2].arrival
        sim = FleetSimulator(fleet, BatchingPolicy(max_batch=8, max_wait=1e-3),
                             failures=[FailureEvent(time=kill_at, replica=0)])
        result = sim.run(affine_trace)
        assert conserved(affine_trace, result)
        assert result.num_requeued > 0
        survivors = [c for c in result.completions if c.requeued]
        assert len(survivors) == result.num_requeued
        # latency includes the outage: completion after the kill, arrival
        # before it — the original arrival is kept
        assert all(c.request.arrival <= kill_at <= c.completion
                   for c in survivors)
        assert result.stats().num_requeued == result.num_requeued

    def test_revived_replica_serves_again_without_retuning(self, affine_trace):
        fleet = two_model_fleet(LeastLoadedPlacement()).build()
        tuned_before = fleet.total_compile_seconds
        span = affine_trace[-1].arrival
        sim = FleetSimulator(
            fleet, BatchingPolicy(max_batch=8, max_wait=1e-3),
            failures=[FailureEvent(time=span * 0.3, replica=0,
                                   revive_at=span * 0.5)])
        result = sim.run(affine_trace)
        assert conserved(affine_trace, result)
        kinds = [e.kind for e in result.events]
        assert 'kill' in kinds and 'revive' in kinds
        after = [b for b in result.batches if b.replica == 0
                 and b.dispatch_time >= span * 0.5]
        assert after, 'the revived replica must serve again'
        assert fleet.total_compile_seconds == tuned_before   # no re-tuning

    def test_inflight_batch_is_lost_and_leaves_the_batch_record(self):
        # aim the kill inside a known batch's service window: a dry run
        # (no failures) shows when replica 0 is mid-batch, and determinism
        # guarantees the failure run behaves identically up to the kill.
        # The doomed batch's requests land in lost, and the dead batch
        # leaves the dispatch record so batch stats never count work that
        # also counts as lost
        policy = BatchingPolicy(max_batch=8, max_wait=1e-3)
        trace_ = poisson_trace(qps=50000, num_requests=1000, models=['cnn'],
                               seed=5)

        def fresh_fleet():
            fleet = Fleet([RTX3090, RTX3090],
                          placement=LeastLoadedPlacement())
            fleet.register('cnn', tiny_cnn, max_batch=8)
            return fleet

        dry = FleetSimulator(fresh_fleet(), policy).run(trace_)
        doomed = next(b for b in dry.batches if b.replica == 0
                      and b.dispatch_time > 0)
        done = min(c.completion for c in dry.completions
                   if c.replica == 0 and c.dispatch_time == doomed.dispatch_time)
        kill_at = (doomed.dispatch_time + done) / 2   # mid-service

        sim = FleetSimulator(fresh_fleet(), policy,
                             failures=[FailureEvent(time=kill_at, replica=0)])
        result = sim.run(trace_)
        assert conserved(trace_, result)
        assert {r.req_id for r in doomed.requests} <= {
            r.req_id for r in result.lost}
        assert (sum(len(b.requests) for b in result.batches)
                == len(result.completions))
        served = {c.request.req_id for c in result.completions}
        assert not served & {r.req_id for r in result.lost}

    def test_failure_for_a_never_joined_replica_is_a_noop(self):
        # seeded schedules are drawn against the fleet's *maximum* size; a
        # kill/revive naming an index that never joined must not crash
        fleet = Fleet([RTX3090], placement=RoundRobinPlacement())
        fleet.register('cnn', tiny_cnn, max_batch=8)
        trace_ = poisson_trace(qps=20000, num_requests=200, models=['cnn'],
                               seed=6)
        sim = FleetSimulator(
            fleet, BatchingPolicy(max_batch=8, max_wait=1e-3),
            failures=[FailureEvent(time=trace_[50].arrival, replica=5,
                                   revive_at=trace_[100].arrival)])
        result = sim.run(trace_)
        assert conserved(trace_, result)
        assert not result.lost
        assert not [e for e in result.events if e.kind in ('kill', 'revive')]

    def test_noop_kill_cannot_revive_an_earlier_permanent_failure(self,
                                                                  affine_trace):
        # a permanent failure followed by a kill+revive window on the same
        # (already dead) replica: the second kill is a no-op, so its revive
        # must be one too — the scheduled outage stays permanent
        fleet = two_model_fleet(LeastLoadedPlacement()).build()
        span = affine_trace[-1].arrival
        sim = FleetSimulator(
            fleet, BatchingPolicy(max_batch=8, max_wait=1e-3),
            failures=[FailureEvent(time=span * 0.2, replica=0),
                      FailureEvent(time=span * 0.4, replica=0,
                                   revive_at=span * 0.5)])
        result = sim.run(affine_trace)
        assert conserved(affine_trace, result)
        assert [e.kind for e in result.events
                if e.kind in ('kill', 'revive')] == ['kill']
        assert fleet.replicas[0].state == 'dead'
        assert not [b for b in result.batches if b.replica == 0
                    and b.dispatch_time > span * 0.2]

    def test_revive_after_mid_drain_kill_resumes_retirement(self):
        # a replica killed while draining must not come back 'serving':
        # the revive resumes (and, queues gone, completes) the scale-down
        policy = BatchingPolicy(max_batch=8, max_wait=1e-3)
        trace_ = poisson_trace(qps=40000, num_requests=1200, models=['cnn'],
                               seed=14)
        span = trace_[-1].arrival

        def build(failures=()):
            fleet = Fleet([RTX3090, RTX3090],
                          placement=RoundRobinPlacement())
            fleet.register('cnn', tiny_cnn, max_batch=8)
            scaler = Autoscaler(
                ScheduledDiurnalPolicy([(0.0, 2), (span * 0.5, 1)]),
                AutoscalerConfig(min_replicas=1, max_replicas=2,
                                 interval=span / 40, cooldown=0.0))
            return fleet, FleetSimulator(fleet, policy, autoscaler=scaler,
                                         failures=failures)

        _, dry_sim = build()
        dry = dry_sim.run(trace_)
        begin = next(e for e in dry.events if e.kind == 'retire_begin')
        done = next(e for e in dry.events if e.kind == 'retire_done')
        assert done.time > begin.time, 'need a real drain window to test'
        kill_at = (begin.time + done.time) / 2
        fleet, sim = build([FailureEvent(time=kill_at, replica=begin.replica,
                                         revive_at=kill_at + span * 0.1)])
        result = sim.run(trace_)
        assert conserved(trace_, result)
        kinds = [e.kind for e in result.events if e.replica == begin.replica]
        assert kinds == ['retire_begin', 'kill', 'revive', 'retire_done']
        assert fleet.replicas[begin.replica].state == 'dead'
        revive_at = next(e.time for e in result.events if e.kind == 'revive')
        assert not [b for b in result.batches if b.replica == begin.replica
                    and b.dispatch_time > revive_at]

    def test_seeded_failure_schedule_is_deterministic(self):
        a = FailureInjector.seeded(4, num_replicas=3, span=1.0, seed=7,
                                   mttr=0.2)
        b = FailureInjector.seeded(4, num_replicas=3, span=1.0, seed=7,
                                   mttr=0.2)
        assert a.events == b.events
        assert len(a) == 4
        assert all(e.revive_at > e.time for e in a)
        different = FailureInjector.seeded(4, num_replicas=3, span=1.0,
                                           seed=8, mttr=0.2)
        assert different.events != a.events

    def test_failure_run_replays_identically(self, affine_trace):
        def run():
            fleet = two_model_fleet(LeastLoadedPlacement())
            injector = FailureInjector.seeded(
                2, num_replicas=2, span=affine_trace[-1].arrival, seed=11)
            sim = FleetSimulator(fleet,
                                 BatchingPolicy(max_batch=8, max_wait=1e-3),
                                 failures=injector)
            return sim.run(affine_trace)

        first, again = run(), run()
        assert ([(c.request.req_id, c.completion, c.replica)
                 for c in first.completions]
                == [(c.request.req_id, c.completion, c.replica)
                    for c in again.completions])
        assert first.events == again.events
        assert [r.req_id for r in first.lost] == [r.req_id for r in again.lost]


# ---------------------------------------------------------------------------
# autoscaled runs: join, drain-before-retire, sole-host protection


class TestAutoscaledRuns:
    def test_scale_down_drains_queued_batches_before_removal(self):
        fleet = Fleet([RTX3090, RTX3090], placement=RoundRobinPlacement())
        fleet.register('cnn', tiny_cnn, max_batch=8)
        trace_ = poisson_trace(qps=20000, num_requests=800, models=['cnn'],
                               seed=1)
        span = trace_[-1].arrival
        scaler = Autoscaler(
            ScheduledDiurnalPolicy([(0.0, 2), (span * 0.5, 1)]),
            AutoscalerConfig(min_replicas=1, max_replicas=2,
                             interval=span / 40, cooldown=0.0))
        sim = FleetSimulator(fleet, BatchingPolicy(max_batch=8, max_wait=1e-3),
                             autoscaler=scaler)
        result = sim.run(trace_)
        assert conserved(trace_, result)
        assert not result.lost                       # draining loses nothing
        begins = [e for e in result.events if e.kind == 'retire_begin']
        dones = [e for e in result.events if e.kind == 'retire_done']
        assert begins and dones
        retired = begins[0].replica
        assert dones[0].replica == retired
        assert dones[0].time >= begins[0].time
        # nothing dispatches on the retired replica after it fully left
        assert not [b for b in result.batches if b.replica == retired
                    and b.dispatch_time > dones[0].time]
        assert fleet.replicas[retired].state == 'dead'

    def test_scale_up_joins_warm_from_the_shared_cache(self, tmp_path):
        path = str(tmp_path / 'schedules.json')
        donor = Fleet([RTX3090], placement=RoundRobinPlacement())
        donor.register('cnn', tiny_cnn, max_batch=8)
        donor.build()
        donor.replicas[0].registry.save_cache(path)

        fleet = Fleet([RTX3090], placement=LeastLoadedPlacement(),
                      warm_from=path)
        fleet.register('cnn', tiny_cnn, max_batch=8)
        trace_ = poisson_trace(qps=20000, num_requests=800, models=['cnn'],
                               seed=2)
        span = trace_[-1].arrival
        scaler = Autoscaler(
            ScheduledDiurnalPolicy([(0.0, 1), (span * 0.3, 2)]),
            AutoscalerConfig(min_replicas=1, max_replicas=2,
                             interval=span / 40, cooldown=0.0))
        sim = FleetSimulator(fleet, BatchingPolicy(max_batch=8, max_wait=1e-3),
                             autoscaler=scaler)
        result = sim.run(trace_)
        joins = [e for e in result.events if e.kind == 'join']
        assert len(joins) == 1
        assert result.scale_up_tuning_seconds == 0.0   # exact hits: free
        assert fleet.num_replicas == 2
        joined = joins[0].replica
        assert [b for b in result.batches if b.replica == joined], (
            'the joined replica must take load')
        stats = result.stats(cold_start_seconds=0.0)
        assert stats.replica_seconds < 2 * span        # joined late: < 2 full

    def test_multi_step_scale_down_never_orphans_a_model(self):
        # a scale_increment=2 step retires two replicas in one tick; the
        # sole-host check must account for the tick's earlier victim, or
        # an affine home group could be drained whole and force an
        # emergency rehome (a failure path, not a capacity decision)
        fleet = Fleet([RTX3090] * 4, placement=ModelAffinePlacement())
        fleet.register('cnn', tiny_cnn, max_batch=8)
        fleet.register('mlp', tiny_mlp, max_batch=8)   # homes: (0,1) / (2,3)
        trace_ = poisson_trace(qps=20000, num_requests=800,
                               models=['cnn', 'mlp'], seed=7)
        span = trace_[-1].arrival
        scaler = Autoscaler(
            ScheduledDiurnalPolicy([(0.0, 4), (span * 0.4, 2)]),
            AutoscalerConfig(min_replicas=2, max_replicas=4,
                             interval=span / 40, cooldown=0.0,
                             scale_increment=2))
        sim = FleetSimulator(fleet, BatchingPolicy(max_batch=8, max_wait=1e-3),
                             autoscaler=scaler)
        result = sim.run(trace_)
        assert conserved(trace_, result)
        assert not [e for e in result.events if e.kind == 'rehome']
        assert result.rehome_tuning_seconds == 0.0
        for model in ('cnn', 'mlp'):
            assert fleet.active_hosts(model), f'{model} was orphaned'

    def test_join_tuning_is_not_double_counted_as_cold_start(self):
        # a cold mid-run join's tuning must appear exactly once: in
        # scale_up_tuning_seconds, not also inside cold_start_seconds
        fleet = Fleet([RTX3090], placement=LeastLoadedPlacement())
        fleet.register('cnn', tiny_cnn, max_batch=8)
        trace_ = poisson_trace(qps=20000, num_requests=600, models=['cnn'],
                               seed=8)
        span = trace_[-1].arrival
        scaler = Autoscaler(
            ScheduledDiurnalPolicy([(0.0, 1), (span * 0.3, 2)]),
            AutoscalerConfig(min_replicas=1, max_replicas=2,
                             interval=span / 40, cooldown=0.0))
        sim = FleetSimulator(fleet, BatchingPolicy(max_batch=8, max_wait=1e-3),
                             autoscaler=scaler)
        stats = sim.run(trace_).stats()
        pre_trace = fleet.replicas[0].compile_seconds
        joined = fleet.replicas[1].compile_seconds
        assert joined > 0                            # cold join, real bill
        assert stats.cold_start_seconds == pytest.approx(pre_trace)
        assert stats.scale_up_tuning_seconds == pytest.approx(joined)

    def test_retired_replica_is_not_revivable(self):
        # a replica the autoscaler retired has left the fleet for good: a
        # failure schedule naming it later (kill or revive) is a no-op
        fleet = Fleet([RTX3090, RTX3090], placement=RoundRobinPlacement())
        fleet.register('cnn', tiny_cnn, max_batch=8)
        trace_ = poisson_trace(qps=20000, num_requests=800, models=['cnn'],
                               seed=4)
        span = trace_[-1].arrival
        scaler = Autoscaler(
            ScheduledDiurnalPolicy([(0.0, 1)]),      # retire down to 1 asap
            AutoscalerConfig(min_replicas=1, max_replicas=2,
                             interval=span / 40, cooldown=0.0))
        sim = FleetSimulator(
            fleet, BatchingPolicy(max_batch=8, max_wait=1e-3),
            autoscaler=scaler,
            failures=[FailureEvent(time=span * 0.6, replica=1,
                                   revive_at=span * 0.7)])
        result = sim.run(trace_)
        assert conserved(trace_, result)
        kinds = [e.kind for e in result.events]
        assert 'retire_done' in kinds
        assert 'kill' not in kinds and 'revive' not in kinds
        retired = next(e.replica for e in result.events
                       if e.kind == 'retire_done')
        assert fleet.replicas[retired].state == 'dead'

    def test_scale_down_cancels_a_pending_join_before_draining(self):
        # with a provision delay, a join can become redundant before it
        # lands; the scale-down must shed it (free) instead of draining a
        # live, warm replica and then letting the stale join land anyway
        fleet = Fleet([RTX3090], placement=RoundRobinPlacement())
        fleet.register('cnn', tiny_cnn, max_batch=8)
        trace_ = poisson_trace(qps=20000, num_requests=600, models=['cnn'],
                               seed=15)
        span = trace_[-1].arrival
        scaler = Autoscaler(
            ScheduledDiurnalPolicy([(0.0, 1), (span * 0.3, 2),
                                    (span * 0.4, 1)]),
            AutoscalerConfig(min_replicas=1, max_replicas=2,
                             interval=span / 40, cooldown=0.0,
                             provision_delay=span * 0.3))
        sim = FleetSimulator(fleet, BatchingPolicy(max_batch=8, max_wait=1e-3),
                             autoscaler=scaler)
        result = sim.run(trace_)
        assert conserved(trace_, result)
        kinds = [e.kind for e in result.events]
        assert 'join_cancelled' in kinds
        assert 'join' not in kinds                   # the join never landed
        assert not [k for k in kinds if k.startswith('retire')]
        assert fleet.num_replicas == 1               # nothing ever grew
        assert result.scale_up_tuning_seconds == 0.0

    def test_autoscaler_never_drains_a_sole_host(self):
        # both replicas are sole hosts under model-affine: a scale-down wish
        # must find no safe victim and do nothing
        fleet = two_model_fleet(ModelAffinePlacement())
        trace_ = poisson_trace(qps=20000, num_requests=400,
                               models=['cnn', 'mlp'], seed=3)
        span = trace_[-1].arrival
        scaler = Autoscaler(
            ScheduledDiurnalPolicy([(0.0, 1)]),
            AutoscalerConfig(min_replicas=1, max_replicas=2,
                             interval=span / 20, cooldown=0.0))
        sim = FleetSimulator(fleet, BatchingPolicy(max_batch=8, max_wait=1e-3),
                             autoscaler=scaler)
        result = sim.run(trace_)
        assert conserved(trace_, result)
        assert not [e for e in result.events if e.kind.startswith('retire')]
        assert all(r.state == 'serving' for r in fleet.replicas)


# ---------------------------------------------------------------------------
# placement failover + fleet surgery API


class TestFailoverAndSurgery:
    def test_model_affine_failover_groups(self):
        policy = ModelAffinePlacement()
        policy.partition(['a', 'b'], 4)              # a: (0,1)  b: (2,3)
        assert policy.rehome('a', serving=[2, 3], hosting=(0, 1)) == 2
        assert policy.rehome('b', serving=[0, 1], hosting=(2, 3)) == 0
        # failover group fully dead too: fall back to lowest serving index
        assert policy.rehome('a', serving=[1], hosting=(0,)) == 1

    def test_single_group_fails_over_outside_the_home(self):
        policy = ModelAffinePlacement()
        policy.partition(['only'], 3)                # home (0,1,2): no other
        assert policy._failover['only'] == (0, 1, 2)
        policy.partition(['only'], 1)
        assert policy._failover['only'] == (0,)

    def test_affine_join_hosts_only_the_thinnest_model(self):
        # the join hook preserves affinity: a scale-up replica takes the
        # model with the fewest serving hosts, not the whole zoo
        fleet = two_model_fleet(ModelAffinePlacement()).build()
        joined = fleet.add_replica(RTX3090, now=0.5)   # cnn/mlp tied: cnn
        assert sorted(joined.registry.models) == ['cnn']
        assert fleet.hosting['cnn'] == (0, 2)
        again = fleet.add_replica(RTX3090, now=0.6)    # now mlp is thinnest
        assert sorted(again.registry.models) == ['mlp']
        # host-everywhere policies keep the host-everything default
        spread = two_model_fleet(RoundRobinPlacement()).build()
        assert sorted(spread.add_replica(RTX3090).registry.models) == [
            'cnn', 'mlp']

    def test_default_rehome_prefers_a_fresh_replica(self):
        policy = RoundRobinPlacement()
        assert policy.rehome('m', serving=[1, 2], hosting=(1,)) == 2
        assert policy.rehome('m', serving=[1], hosting=(1,)) == 1

    def test_add_replica_requires_build_and_known_models(self):
        fleet = two_model_fleet(RoundRobinPlacement())
        with pytest.raises(RuntimeError, match='build'):
            fleet.add_replica(RTX3090)
        fleet.build()
        with pytest.raises(KeyError, match='not registered'):
            fleet.add_replica(RTX3090, models=['nope'])
        replica = fleet.add_replica(RTX3090, now=1.5, models=['cnn'])
        assert replica.index == 2 and replica.joined_at == 1.5
        assert fleet.hosting['cnn'] == (0, 1, 2)
        assert fleet.hosting['mlp'] == (0, 1)

    def test_host_model_is_idempotent_and_charges_once(self):
        fleet = two_model_fleet(ModelAffinePlacement()).build()
        charged = fleet.host_model(1, 'cnn')
        assert charged > 0
        assert fleet.hosting['cnn'] == (0, 1)
        assert fleet.host_model(1, 'cnn') == 0.0     # already hosted
        with pytest.raises(KeyError, match='not registered'):
            fleet.host_model(0, 'nope')

    def test_cache_warm_missing_ok(self, tmp_path):
        cache = ScheduleCache()
        missing = str(tmp_path / 'nope.json')
        assert cache.warm(missing, missing_ok=True) == 0
        with pytest.raises(FileNotFoundError):
            cache.warm(missing)

    def test_batcher_drain_and_add_model(self):
        from repro.serve import Request

        batcher = DynamicBatcher(BatchingPolicy(max_batch=4, max_wait=1e-3),
                                 {'a': (1, 2, 4)})
        batcher.enqueue(Request(1, 'a', 2, 0.002))
        batcher.enqueue(Request(0, 'a', 1, 0.001))
        drained = batcher.drain()
        assert [r.req_id for r in drained] == [0, 1]  # arrival order
        assert batcher.pending() == 0
        batcher.add_model('b', (1, 4))
        batcher.add_model('b', (1, 4))               # idempotent
        batcher.enqueue(Request(2, 'b', 1, 0.0))
        assert batcher.pending('b') == 1
        with pytest.raises(ValueError, match='already batched'):
            batcher.add_model('b', (1, 2))
        with pytest.raises(ValueError, match='max_batch'):
            batcher.add_model('c', (1, 2))           # largest bucket < 4
