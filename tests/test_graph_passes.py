"""Graph passes: constant folding, conv lowering, fusion partition."""
import numpy as np
import pytest

from repro.graph import from_numpy, ops, symbol, trace
from repro.graph.ops.conv import Conv2dOp, Im2colOp
from repro.graph.ops.matmul import MatmulOp
from repro.graph.passes import (build_group_spec, fold_constants,
                                lower_conv_to_gemm, partition_graph)

RNG = np.random.default_rng(0)


def _conv_bn_relu_graph():
    x = symbol([1, 8, 10, 10], name='x')
    w = from_numpy(RNG.standard_normal((16, 8, 3, 3)).astype(np.float32) * 0.1)
    scale = from_numpy(RNG.standard_normal((16, 1, 1)).astype(np.float32))
    shift = from_numpy(RNG.standard_normal((16, 1, 1)).astype(np.float32))
    y = ops.relu(ops.batch_norm(ops.conv2d(x, w, padding=1), scale, shift))
    return trace(y, name='cbr'), x


class TestFoldConstants:
    def test_constant_subtree_evaluated(self):
        a = from_numpy(np.ones((4,), dtype=np.float32))
        b = from_numpy(np.full((4,), 2.0, dtype=np.float32))
        x = symbol([4])
        y = ops.add(x, ops.mul(a, b))
        folded = fold_constants(trace(y))
        assert folded.num_operators == 1          # only the add survives
        got = folded.run(np.zeros(4, dtype=np.float32))[0]
        np.testing.assert_allclose(got, 2.0)

    def test_noop_when_nothing_constant(self):
        x = symbol([4])
        g = trace(ops.relu(x))
        assert fold_constants(g).num_operators == g.num_operators


class TestLowerConv:
    def test_decomposition_structure(self):
        g, _ = _conv_bn_relu_graph()
        lowered = lower_conv_to_gemm(g)
        kinds = [type(op).__name__ for op in lowered.nodes]
        assert 'Conv2dOp' not in kinds
        assert 'Im2colOp' in kinds and 'MatmulOp' in kinds

    def test_functional_equivalence(self):
        g, _ = _conv_bn_relu_graph()
        lowered = fold_constants(lower_conv_to_gemm(g))
        x = RNG.standard_normal((1, 8, 10, 10)).astype(np.float32)
        np.testing.assert_allclose(lowered.run(x)[0], g.run(x)[0],
                                   rtol=1e-4, atol=1e-4)

    def test_depthwise_not_lowered(self):
        x = symbol([1, 8, 10, 10])
        w = from_numpy(np.zeros((8, 1, 3, 3), dtype=np.float32))
        g = trace(ops.conv2d(x, w, padding=1, groups=8))
        lowered = lower_conv_to_gemm(g)
        assert any(isinstance(op, Conv2dOp) for op in lowered.nodes)


class TestPartition:
    def test_conv_bn_relu_collapses_to_one_group(self):
        g, _ = _conv_bn_relu_graph()
        lowered = fold_constants(lower_conv_to_gemm(g))
        groups = partition_graph(lowered)
        assert len(groups) == 1
        (group,) = groups
        assert isinstance(group.anchor, MatmulOp)
        assert any(isinstance(p, Im2colOp) for p in group.prologue_ops)
        # epilogues: reshape, transpose, bn mul, bn add, relu
        assert len(group.epilogue_ops) == 5
        assert group.output.shape == (1, 16, 10, 10)

    def test_every_op_placed_or_duplicated_prologue(self):
        g, _ = _conv_bn_relu_graph()
        lowered = fold_constants(lower_conv_to_gemm(g))
        groups = partition_graph(lowered)
        placed = set()
        for grp in groups:
            placed.update(id(op) for op in grp.members)
        assert all(id(op) in placed for op in lowered.nodes)

    def test_duplication_of_multi_consumer_injective(self):
        """softmax: exp feeds both sum and div; it fuses into both (§4.2)."""
        x = symbol([4, 64])
        g = trace(ops.softmax(x))
        groups = partition_graph(g)
        exp_hosts = [grp for grp in groups
                     if any(op.name == 'exp' for op in grp.prologue_ops)]
        assert len(exp_hosts) == 2
        # exp produces no kernel of its own
        assert not any(grp.anchor.name == 'exp' for grp in groups)

    def test_group_output_respects_graph_outputs(self):
        x = symbol([8])
        mid = ops.relu(x)
        out = ops.exp(mid)
        g = trace([mid, out])            # mid is itself a graph output
        groups = partition_graph(g)
        outputs = {grp.output._id for grp in groups}
        assert mid._id in outputs and out._id in outputs

    def test_reduce_takes_injective_prologue(self):
        x = symbol([4, 128])
        g = trace(ops.reduce_sum(ops.exp(x)))
        groups = partition_graph(g)
        assert len(groups) == 1
        assert groups[0].prologue_ops[0].name == 'exp'

    def test_topological_group_order(self):
        g, _ = _conv_bn_relu_graph()
        y = g.outputs[0]
        lowered = fold_constants(lower_conv_to_gemm(g))
        groups = partition_graph(lowered)
        produced = set()
        for grp in groups:
            for t in grp.input_tensors():
                if t.producer is not None:
                    assert t._id in produced or not any(
                        grp2.contains(t.producer) for grp2 in groups)
            produced.add(grp.output._id)


class TestGroupSpec:
    def test_spec_binding_covers_all_outer_inputs(self):
        g, _ = _conv_bn_relu_graph()
        lowered = fold_constants(lower_conv_to_gemm(g))
        (group,) = partition_graph(lowered)
        spec = build_group_spec(group)
        for ti in spec.spec.outer_inputs():
            assert ti in spec.tensor_of
            assert spec.tensor_of[ti].shape == ti.shape

    def test_spec_names_unique(self):
        g, _ = _conv_bn_relu_graph()
        lowered = fold_constants(lower_conv_to_gemm(g))
        (group,) = partition_graph(lowered)
        spec = build_group_spec(group)
        names = [ti.name for ti in spec.spec.outer_inputs()]
        assert len(names) == len(set(names))
