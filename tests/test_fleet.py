"""The fleet layer: placement policies, the multi-replica simulator, the
device-family transfer tier, and admission control.
"""
import numpy as np
import pytest

from repro.core.schedule import MatmulSchedule
from repro.graph import ops, symbol, trace
from repro.gpusim.device import (A100, LAPTOP_GPU, RTX3090, DeviceSpec,
                                 device_family_key)
from repro.models.common import WeightFactory, conv_bn_relu, linear
from repro.runtime import HidetExecutor, ScheduleCache
from repro.serve import (BatchingPolicy, DynamicBatcher, Fleet, FleetSimulator,
                         LeastLoadedPlacement, ModelAffinePlacement,
                         ModelRegistry, Request, RoundRobinPlacement,
                         format_fleet_report, poisson_trace)


def tiny_cnn(batch: int):
    x = symbol([batch, 4, 12, 12], name='x')
    wf = WeightFactory(5)
    y = conv_bn_relu(wf, x, 8, kernel=3, padding=1, name='c1')
    return trace(ops.global_avg_pool(y), name=f'cnn_b{batch}')


def tiny_mlp(batch: int):
    x = symbol([batch, 32], name='x')
    wf = WeightFactory(9)
    y = ops.relu(linear(wf, x, 64, name='fc1'))
    return trace(linear(wf, y, 8, name='fc2'), name=f'mlp_b{batch}')


def two_model_fleet(placement, devices=(RTX3090, RTX3090), **kwargs) -> Fleet:
    fleet = Fleet(list(devices), placement=placement, **kwargs)
    fleet.register('cnn', tiny_cnn, max_batch=8)
    fleet.register('mlp', tiny_mlp, max_batch=8)
    return fleet


# ---------------------------------------------------------------------------
# placement policies


class TestPlacementPartition:
    def test_round_robin_hosts_everything_everywhere(self):
        assert RoundRobinPlacement().partition(['a', 'b'], 3) == {
            'a': (0, 1, 2), 'b': (0, 1, 2)}

    def test_model_affine_balanced_split(self):
        assert ModelAffinePlacement().partition(['a', 'b'], 4) == {
            'a': (0, 1), 'b': (2, 3)}
        # uneven: first models absorb the remainder
        assert ModelAffinePlacement().partition(['a', 'b', 'c'], 4) == {
            'a': (0, 1), 'b': (2,), 'c': (3,)}
        # more models than replicas: wrap around
        assert ModelAffinePlacement().partition(['a', 'b', 'c'], 2) == {
            'a': (0,), 'b': (1,), 'c': (0,)}

    def test_model_affine_explicit_assignment_validated(self):
        explicit = ModelAffinePlacement({'a': (1,), 'b': (0, 1)})
        assert explicit.partition(['a', 'b'], 2) == {'a': (1,), 'b': (0, 1)}
        with pytest.raises(ValueError, match='misses models'):
            ModelAffinePlacement({'a': (0,)}).partition(['a', 'b'], 2)
        with pytest.raises(ValueError, match='invalid replicas'):
            ModelAffinePlacement({'a': (5,)}).partition(['a'], 2)

    def test_round_robin_routing_is_deterministic_after_reset(self):
        policy = RoundRobinPlacement()
        req = Request(0, 'a', 1, 0.0)
        first = [policy.choose(req, (0, 1, 2), None, 0.0) for _ in range(5)]
        policy.reset()
        again = [policy.choose(req, (0, 1, 2), None, 0.0) for _ in range(5)]
        assert first == again == [0, 1, 2, 0, 1]


@pytest.fixture(scope='module')
def affine_fleet():
    return two_model_fleet(ModelAffinePlacement()).build()


class TestFleet:
    def test_build_partitions_and_compiles_hosted_models_only(self, affine_fleet):
        assert affine_fleet.hosting == {'cnn': (0,), 'mlp': (1,)}
        assert sorted(affine_fleet.replicas[0].registry.models) == ['cnn']
        assert sorted(affine_fleet.replicas[1].registry.models) == ['mlp']
        # each replica paid only its own models' tuning bill
        assert affine_fleet.total_compile_seconds == sum(
            r.compile_seconds for r in affine_fleet.replicas)

    def test_register_after_build_rejected(self, affine_fleet):
        with pytest.raises(RuntimeError, match='already built'):
            affine_fleet.register('late', tiny_cnn)

    def test_unknown_model_and_empty_fleet_rejected(self, affine_fleet):
        with pytest.raises(KeyError, match='not registered'):
            affine_fleet.hosts('nope')
        with pytest.raises(ValueError, match='at least one replica'):
            Fleet([])
        with pytest.raises(ValueError, match='no models'):
            Fleet([RTX3090]).build()

    def test_corrupt_warm_file_boots_cold(self, tmp_path):
        bad = tmp_path / 'bad.json'
        bad.write_text('{not json')
        fleet = Fleet([RTX3090], warm_from=str(bad))
        fleet.register('cnn', tiny_cnn, buckets=[1])
        fleet.build()
        assert fleet.total_compile_seconds > 0      # cold, but booted

    def test_simulation_is_deterministic(self, affine_fleet):
        sim = FleetSimulator(affine_fleet,
                             BatchingPolicy(max_batch=8, max_wait=1e-3))
        trace_ = poisson_trace(qps=30000, num_requests=400,
                               models=['cnn', 'mlp'], seed=3, sizes=(1, 2))
        r1, r2 = sim.run(trace_), sim.run(trace_)
        key = lambda r: [(c.request.req_id, c.completion, c.replica)  # noqa: E731
                         for c in r.completions]
        assert key(r1) == key(r2)
        assert sorted(c.request.req_id for c in r1.completions) == \
            list(range(400))
        assert sum(b.size for b in r1.batches) == sum(r.size for r in trace_)

    def test_affine_routes_models_to_home_replicas(self, affine_fleet):
        sim = FleetSimulator(affine_fleet,
                             BatchingPolicy(max_batch=8, max_wait=1e-3))
        result = sim.run(poisson_trace(qps=20000, num_requests=300,
                                       models=['cnn', 'mlp'], seed=4))
        for completion in result.completions:
            expected = affine_fleet.hosting[completion.request.model]
            assert completion.replica in expected
        report = format_fleet_report(result)
        assert 'per replica' in report and 'r0:RTX3090' in report

    def test_least_loaded_avoids_the_busy_replica(self):
        fleet = Fleet([RTX3090, RTX3090], placement=LeastLoadedPlacement())
        fleet.register('cnn', tiny_cnn, max_batch=8)
        fleet.build()
        sim = FleetSimulator(fleet, BatchingPolicy(max_batch=8, max_wait=1e-3))
        result = sim.run(poisson_trace(qps=50000, num_requests=400,
                                       models=['cnn'], seed=5))
        served = {b.replica for b in result.batches}
        assert served == {0, 1}          # both replicas carry load
        per = result.per_replica()
        shares = [row['requests'] for row in per]
        assert min(shares) > 0.3 * max(shares)   # roughly balanced

    def test_per_replica_rows_cover_all_batches(self, affine_fleet):
        sim = FleetSimulator(affine_fleet,
                             BatchingPolicy(max_batch=8, max_wait=1e-3))
        result = sim.run(poisson_trace(qps=20000, num_requests=200,
                                       models=['cnn', 'mlp'], seed=6))
        rows = result.per_replica()
        assert sum(r['batches'] for r in rows) == len(result.batches)
        assert all(0 <= r['utilization'] <= 1 for r in rows)


# ---------------------------------------------------------------------------
# device-family transfer tier


class TestDeviceFamilyCache:
    def test_device_family_key_ignores_capacity(self):
        assert device_family_key(RTX3090) == device_family_key(A100)
        assert device_family_key(RTX3090) == device_family_key(LAPTOP_GPU)
        narrow = DeviceSpec(name='narrow', num_sms=8,
                            max_threads_per_block=256)
        assert device_family_key(narrow) != device_family_key(RTX3090)

    def test_get_device_transfer_counts_and_validates(self):
        cache = ScheduleCache()
        sched = MatmulSchedule()
        cache.put('sig', 'matmul', sched, device_family='fam')
        # a failed validation is not a transfer hit
        assert cache.get_device_transfer('fam', 'matmul',
                                         validate=lambda s: False) is None
        assert cache.device_transfer_hits == 0
        assert cache.get_device_transfer('fam', 'matmul') == sched
        assert cache.device_transfer_hits == 1
        assert cache.get_device_transfer('other', 'matmul') is None
        assert cache.get_device_transfer('fam', 'reduce') is None

    def test_eviction_relinks_device_family(self):
        cache = ScheduleCache(max_entries=2)
        old = MatmulSchedule(block_k=8)
        cache.put('d-old', 'matmul', old, device_family='dfam')
        cache.put('d-new', 'matmul', MatmulSchedule(block_k=16),
                  device_family='dfam')
        cache.get('d-old', kind='matmul')            # make 'd-new' the LRU
        cache.put('other', 'matmul', MatmulSchedule())   # evicts 'd-new'
        assert cache.get_device_transfer('dfam', 'matmul') == old

    def test_save_load_round_trips_device_family(self, tmp_path):
        path = str(tmp_path / 'cache.json')
        cache = ScheduleCache()
        cache.put('sig', 'matmul', MatmulSchedule(), device_family='dfam')
        cache.save(path)
        loaded = ScheduleCache.load(path)
        assert loaded.get_device_transfer('dfam', 'matmul') is not None


class TestCrossDeviceTransfer:
    @pytest.fixture(scope='class')
    def donor_cache_file(self, tmp_path_factory):
        path = str(tmp_path_factory.mktemp('donor') / 'rtx.json')
        donor = ModelRegistry(device=RTX3090, cache_path=path)
        donor.register('cnn', tiny_cnn, buckets=[1, 2])
        return path

    def test_warm_replica_tunes_for_fewer_seconds(self, donor_cache_file):
        cold = ModelRegistry(device=LAPTOP_GPU)
        cold.register('cnn', tiny_cnn, buckets=[1, 2])

        warm = ModelRegistry(device=LAPTOP_GPU,
                             cache=ScheduleCache.load(donor_cache_file),
                             enable_device_transfer=True)
        model = warm.register('cnn', tiny_cnn, buckets=[1, 2])

        traffic = model.cache_traffic()
        # every bucket's GEMM adopts the foreign schedule: one device
        # transfer per miss, no size-family transfers (the adopted record
        # must not claim its candidates were compiled locally)
        assert traffic['device_transfer_hits'] == traffic['misses'] > 0
        assert traffic['transfer_hits'] == 0
        assert 0 < warm.total_compile_seconds < 0.5 * cold.total_compile_seconds
        # the adopted schedules were re-validated against the local device
        for compiled in model.buckets.values():
            for op in compiled.ops:
                if op.kind == 'matmul_template':
                    assert op.schedule.is_valid(LAPTOP_GPU)

    def test_transfer_charges_compile_and_measure_once_each(self,
                                                            donor_cache_file):
        warm = ModelRegistry(device=LAPTOP_GPU,
                             cache=ScheduleCache.load(donor_cache_file),
                             enable_device_transfer=True)
        warm.register('cnn', tiny_cnn, buckets=[1])
        labels = [label for label, _ in warm.clock.events]
        assert labels and all('retarget' in label for label in labels)

    def test_device_transfer_off_by_default(self, donor_cache_file):
        plain = ModelRegistry(device=LAPTOP_GPU,
                              cache=ScheduleCache.load(donor_cache_file))
        model = plain.register('cnn', tiny_cnn, buckets=[1])
        assert model.cache_traffic()['device_transfer_hits'] == 0

    def test_restricted_space_rejects_foreign_record_outside_it(self):
        """Regression: the device-family key cannot carry the (device-
        derived) space fingerprint, so space isolation is enforced at
        adoption time — an executor whose restricted space excludes the
        foreign schedule must fall back to a full tune, not adopt it."""
        def donor_cache():
            cache = ScheduleCache()
            donor = HidetExecutor(RTX3090, cache=cache,
                                  space=[MatmulSchedule()])  # db=True record
            donor.compile(tiny_cnn(1))
            return cache

        restricted = HidetExecutor(LAPTOP_GPU, cache=donor_cache(),
                                   double_buffer=False,
                                   enable_device_transfer=True)
        assert all(not s.double_buffer for s in restricted.space)
        compiled = restricted.compile(tiny_cnn(1))
        assert compiled.compile_report.device_transfer_hits == 0
        assert not compiled.ops[0].schedule.double_buffer

        # a full-space executor over the same donor does adopt the record
        # (fresh cache: the restricted full-tune above would otherwise have
        # replaced the donor record as the family's newest member)
        full = HidetExecutor(LAPTOP_GPU, cache=donor_cache(),
                             enable_device_transfer=True)
        adopted = full.compile(tiny_cnn(1))
        assert adopted.compile_report.device_transfer_hits > 0
        assert adopted.ops[0].schedule == MatmulSchedule()

    def test_same_device_restart_still_exact_hits(self, donor_cache_file):
        """Device transfer must not shadow the exact tier: a same-device
        registry over the same file tunes nothing at all."""
        same = ModelRegistry(device=RTX3090, cache_path=donor_cache_file,
                             enable_device_transfer=True)
        model = same.register('cnn', tiny_cnn, buckets=[1, 2])
        assert same.total_compile_seconds == 0.0
        assert model.cache_traffic()['device_transfer_hits'] == 0

    def test_fleet_warm_from_foreign_cache(self, donor_cache_file):
        fleet = Fleet([RTX3090, LAPTOP_GPU], warm_from=donor_cache_file)
        fleet.register('cnn', tiny_cnn, buckets=[1, 2])
        fleet.build()
        rtx, laptop = fleet.replicas
        assert rtx.compile_seconds == 0.0            # exact hits
        assert laptop.compile_seconds > 0.0          # retargeted, not free
        traffic = laptop.registry['cnn'].cache_traffic()
        assert traffic['device_transfer_hits'] > 0


# ---------------------------------------------------------------------------
# admission control


@pytest.fixture(scope='module')
def cnn_registry():
    registry = ModelRegistry()
    registry.register('cnn', tiny_cnn, max_batch=8)
    return registry


class TestAdmissionControl:
    def test_policy_validation(self):
        with pytest.raises(ValueError, match='max_queue'):
            BatchingPolicy(max_batch=8, max_queue=4)
        assert BatchingPolicy(max_batch=8, max_queue=8).max_queue == 8

    def test_offer_rejects_over_cap_without_enqueueing(self):
        batcher = DynamicBatcher(BatchingPolicy(max_batch=2, max_queue=3),
                                 {'m': (1, 2)})
        assert batcher.offer(Request(0, 'm', 2, 0.0))
        assert batcher.offer(Request(1, 'm', 1, 0.0))
        assert not batcher.offer(Request(2, 'm', 1, 0.0))   # would be 4 > 3
        assert batcher.pending('m') == 3
        with pytest.raises(KeyError, match='not registered'):
            batcher.offer(Request(3, 'nope', 1, 0.0))

    def test_unbounded_policy_never_rejects(self):
        batcher = DynamicBatcher(BatchingPolicy(max_batch=2), {'m': (1, 2)})
        assert all(batcher.offer(Request(i, 'm', 1, 0.0)) for i in range(50))

    def test_oversized_request_raises_even_near_the_cap(self):
        """Regression: malformed input must raise regardless of queue
        depth — it used to be silently counted as an admission rejection
        when the queue happened to be near its cap."""
        batcher = DynamicBatcher(BatchingPolicy(max_batch=4, max_queue=8),
                                 {'m': (1, 2, 4)})
        for i in range(5):
            assert batcher.offer(Request(i, 'm', 1, 0.0))
        with pytest.raises(ValueError, match='max_batch'):
            batcher.offer(Request(9, 'm', 5, 0.0))

    def test_simulator_counts_rejections_and_conserves_requests(self,
                                                                cnn_registry):
        from repro.serve import ServerSimulator
        service1 = cnn_registry['cnn'].latency(1)
        overload = poisson_trace(qps=6.0 / service1, num_requests=1500,
                                 models=['cnn'], seed=7)
        sim = ServerSimulator(cnn_registry,
                              BatchingPolicy(max_batch=8, max_wait=1e-3,
                                             max_queue=32))
        result = sim.run(overload)
        stats = result.stats(cnn_registry)
        assert stats.num_rejected == len(result.rejected) > 0
        assert stats.num_requests + stats.num_rejected == 1500
        assert stats.offered_requests == 1500
        assert 0 < stats.rejection_rate < 1
        # no rejected request ever completed
        done = {c.request.req_id for c in result.completions}
        assert done.isdisjoint({r.req_id for r in result.rejected})

    def test_admission_bounds_the_tail(self, cnn_registry):
        """The point of load shedding: past saturation, a bounded queue's
        p99 stays near the service time while the unbounded queue's p99
        grows with the backlog."""
        from repro.serve import ServerSimulator
        service1 = cnn_registry['cnn'].latency(1)
        overload = poisson_trace(qps=6.0 / service1, num_requests=1500,
                                 models=['cnn'], seed=8)
        unbounded = ServerSimulator(
            cnn_registry, BatchingPolicy(max_batch=8, max_wait=1e-3))
        bounded = ServerSimulator(
            cnn_registry, BatchingPolicy(max_batch=8, max_wait=1e-3,
                                         max_queue=32))
        p99_unbounded = unbounded.run(overload).stats(cnn_registry).latency_p99_ms
        p99_bounded = bounded.run(overload).stats(cnn_registry).latency_p99_ms
        assert p99_bounded < 0.5 * p99_unbounded

    def test_fleet_simulator_applies_admission_control(self, affine_fleet):
        service1 = affine_fleet.replicas[0].registry['cnn'].latency(1)
        overload = poisson_trace(qps=8.0 / service1, num_requests=1200,
                                 models=['cnn', 'mlp'], seed=9)
        sim = FleetSimulator(affine_fleet,
                             BatchingPolicy(max_batch=8, max_wait=1e-3,
                                            max_queue=16))
        result = sim.run(overload)
        stats = result.stats()
        assert stats.num_rejected > 0
        assert stats.num_requests + stats.num_rejected == 1200

    def test_rejection_surfaced_in_report(self, cnn_registry):
        from repro.serve import ServerSimulator, format_serving_report
        service1 = cnn_registry['cnn'].latency(1)
        sim = ServerSimulator(cnn_registry,
                              BatchingPolicy(max_batch=8, max_wait=1e-3,
                                             max_queue=16))
        result = sim.run(poisson_trace(qps=8.0 / service1, num_requests=800,
                                       models=['cnn'], seed=10))
        text = format_serving_report(result.stats(cnn_registry))
        assert 'rejected' in text and '% of offered' in text
