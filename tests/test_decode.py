"""Continuous (iteration-level) batching for decoder serving.

Covers the decode stack bottom-up: the prefill/decode cost split
(:mod:`repro.gpusim.decode`), the token-granular KV-cache ledger
(:class:`repro.serve.memory.KVCacheLedger`) and its capacity invariant,
the iteration-level scheduler (:class:`repro.serve.ContinuousBatcher`),
and the :class:`repro.serve.DecodeSimulator` event loop — including the
property-based token-conservation law over arbitrary seeded traces with
random failure/scale-up schedules, and the byte-determinism of the
decode bench record and Chrome trace export.
"""
import json
import pathlib
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.gpusim import DecodeCostModel, RTX3090
from repro.gpusim.decode import HOST_LINK_BYTES_PER_S
from repro.obs import TERMINAL_KINDS, Telemetry
from repro.serve import (ContinuousBatcher, DecodePolicy, DecodeSimulator,
                         FailureEvent, KVCacheLedger, Request, decode_trace)
from repro.serve.memory import MemoryOverflowError

BENCH_DIR = pathlib.Path(__file__).resolve().parent.parent / 'benchmarks'


def tiny_cost(weights_bytes: int = 1_000_000, seq_length: int = 16,
              buckets=(1, 2, 4, 8)) -> DecodeCostModel:
    """A synthetic cost model: latency grows sublinearly with width, so
    wider decode steps are cheaper per token (the regime under test)."""
    return DecodeCostModel(
        device=RTX3090, seq_length=seq_length,
        bucket_latency={b: 1e-4 * (1 + 0.25 * i)
                        for i, b in enumerate(buckets)},
        weights_bytes=weights_bytes)


# ---------------------------------------------------------------------------
# the prefill/decode cost split


class TestDecodeCostModel:
    def test_bucket_for_picks_smallest_covering(self):
        cost = tiny_cost()
        assert cost.bucket_for(1) == 1
        assert cost.bucket_for(3) == 4
        assert cost.bucket_for(8) == 8
        with pytest.raises(ValueError):
            cost.bucket_for(9)
        with pytest.raises(ValueError):
            cost.bucket_for(0)

    def test_prefill_amortizes_over_prompt_length(self):
        cost = tiny_cost(seq_length=16)
        short = cost.prefill_seconds(1)
        full = cost.prefill_seconds(16)
        # per-token prefill cost falls as the prompt fills the sequence
        assert full / 16 < short
        # and the full-sequence prefill recovers the bucket latency
        assert full == pytest.approx(
            RTX3090.kernel_launch_overhead + cost.bucket_latency[1])

    def test_decode_step_pays_weight_streaming_floor(self):
        heavy = tiny_cost(weights_bytes=10_000_000_000)
        light = tiny_cost(weights_bytes=0)
        floor = 10_000_000_000 / RTX3090.peak_bandwidth
        assert (heavy.decode_step_seconds(1) - light.decode_step_seconds(1)
                == pytest.approx(floor))

    def test_per_token_cost_falls_with_width(self):
        cost = tiny_cost(weights_bytes=100_000_000)
        per_token_1 = cost.decode_step_seconds(1) / 1
        per_token_8 = cost.decode_step_seconds(8) / 8
        assert per_token_8 < per_token_1

    def test_swap_penalty_prices_the_host_link(self):
        cost = tiny_cost()
        assert cost.swap_penalty_seconds(0) == 0.0
        assert cost.swap_penalty_seconds(-5) == 0.0
        assert (cost.swap_penalty_seconds(int(HOST_LINK_BYTES_PER_S))
                == pytest.approx(1.0))

    def test_rejects_malformed_shapes(self):
        with pytest.raises(ValueError):
            tiny_cost(seq_length=0)
        with pytest.raises(ValueError):
            DecodeCostModel(device=RTX3090, seq_length=16,
                            bucket_latency={}, weights_bytes=0)
        with pytest.raises(ValueError):
            tiny_cost(weights_bytes=-1)


# ---------------------------------------------------------------------------
# the KV-cache ledger


class TestKVCacheLedger:
    def test_admit_extend_release_round_trip(self):
        ledger = KVCacheLedger(capacity_bytes=1000, bytes_per_token=10)
        ledger.admit(1, prompt_tokens=5)
        assert ledger.committed_bytes == 50
        ledger.extend(1, 3)
        assert ledger.committed_bytes == 80
        assert ledger.tokens_of(1) == 8
        assert ledger.release(1) == 8
        assert ledger.committed_bytes == 0
        assert ledger.peak_committed_bytes == 80

    def test_reservation_headroom_converts_to_committed(self):
        ledger = KVCacheLedger(capacity_bytes=1000, bytes_per_token=10)
        ledger.admit(1, prompt_tokens=5, reserve_tokens=20)
        # the planning view holds the whole worst case from admission on
        assert ledger.reserved_bytes == 250
        assert ledger.committed_bytes == 50
        ledger.extend(1, 20)
        # every emitted token converted headroom; the reservation never grew
        assert ledger.reserved_bytes == 250
        assert ledger.committed_bytes == 250

    def test_strict_admission_never_overflows(self):
        ledger = KVCacheLedger(capacity_bytes=100, bytes_per_token=10)
        assert ledger.can_admit(5, reserve_tokens=5)
        assert not ledger.can_admit(5, reserve_tokens=6)
        ledger.admit(1, prompt_tokens=5, reserve_tokens=5)
        with pytest.raises(MemoryOverflowError):
            ledger.admit(2, prompt_tokens=1)
        ledger.extend(1, 5)              # within the reservation: fine
        with pytest.raises(MemoryOverflowError):
            ledger.extend(1, 1)          # past it: loud, never silent
        assert ledger.overflow_bytes == 0

    def test_unbounded_mode_exposes_overflow(self):
        ledger = KVCacheLedger(capacity_bytes=100, bytes_per_token=10,
                               strict=False)
        ledger.admit(1, prompt_tokens=8)
        ledger.admit(2, prompt_tokens=8)
        assert ledger.committed_bytes == 160
        assert ledger.overflow_bytes == 60
        ledger.release(1)
        assert ledger.overflow_bytes == 0

    def test_duplicate_and_absent_ids_are_loud(self):
        ledger = KVCacheLedger(capacity_bytes=100, bytes_per_token=1)
        ledger.admit(1, prompt_tokens=1)
        with pytest.raises(ValueError):
            ledger.admit(1, prompt_tokens=1)
        with pytest.raises(KeyError):
            ledger.extend(99)
        assert ledger.release(99) == 0   # releasing nothing frees nothing

    def test_trail_records_every_timestamped_mutation(self):
        ledger = KVCacheLedger(capacity_bytes=100, bytes_per_token=10,
                               record_trail=True)
        ledger.admit(1, prompt_tokens=2, now=0.0)
        ledger.extend(1, now=1.0)
        ledger.clear(now=2.0)
        assert ledger.trail == [(0.0, 20), (1.0, 30), (2.0, 0)]


# ---------------------------------------------------------------------------
# the iteration-level scheduler


def _decode_request(req_id: int, prompt: int = 4, output: int = 8,
                    arrival: float = 0.0) -> Request:
    return Request(req_id=req_id, model='gpt2', size=1, arrival=arrival,
                   prompt_tokens=prompt, output_tokens=output)


class TestContinuousBatcher:
    def test_non_decode_traffic_is_malformed(self):
        batcher = ContinuousBatcher(DecodePolicy())
        with pytest.raises(ValueError, match='decode_trace'):
            batcher.offer(Request(0, 'gpt2', 1, 0.0))

    def test_output_past_max_tokens_is_malformed(self):
        batcher = ContinuousBatcher(DecodePolicy(max_tokens=8))
        with pytest.raises(ValueError, match='max_tokens'):
            batcher.offer(_decode_request(0, output=9))

    def test_max_waiting_sheds_load(self):
        batcher = ContinuousBatcher(DecodePolicy(max_waiting=1))
        assert batcher.offer(_decode_request(0))
        assert not batcher.offer(_decode_request(1))
        assert batcher.pending() == 1

    def test_joiners_bounded_by_width_and_commit_their_kv(self):
        batcher = ContinuousBatcher(DecodePolicy(max_width=2))
        ledger = KVCacheLedger(capacity_bytes=10_000, bytes_per_token=1)
        for i in range(3):
            batcher.offer(_decode_request(i))
        joiners = batcher.next_joiners(0, ledger)
        assert [r.req_id for r in joiners] == [0, 1]
        # admitted prompts and reservations are resident before the next ask
        assert ledger.active_requests == 2
        assert ledger.reserved_bytes == 2 * (4 + 8)
        assert batcher.next_joiners(2, ledger) == []    # batch is full

    def test_reserve_admission_blocks_head_of_line(self):
        """A KV-starved head blocks shorter requests behind it — skipping
        it would starve long generations exactly when memory is tight."""
        policy = DecodePolicy(max_width=4, admission='reserve')
        batcher = ContinuousBatcher(policy)
        ledger = KVCacheLedger(capacity_bytes=100, bytes_per_token=1)
        batcher.offer(_decode_request(0, prompt=50, output=60))   # never fits
        batcher.offer(_decode_request(1, prompt=4, output=8))     # would fit
        assert batcher.next_joiners(0, ledger) == []
        assert batcher.pending() == 2

    def test_unbounded_admission_ignores_capacity(self):
        policy = DecodePolicy(max_width=4, admission='unbounded')
        batcher = ContinuousBatcher(policy)
        ledger = KVCacheLedger(capacity_bytes=10, bytes_per_token=1,
                               strict=False)
        batcher.offer(_decode_request(0, prompt=50, output=60))
        assert len(batcher.next_joiners(0, ledger)) == 1
        assert ledger.overflow_bytes == 40

    def test_policy_validation(self):
        with pytest.raises(ValueError, match='admission'):
            DecodePolicy(admission='hopeful')
        with pytest.raises(ValueError):
            DecodePolicy(max_width=0)
        with pytest.raises(ValueError):
            DecodePolicy(max_tokens=0)


# ---------------------------------------------------------------------------
# the decode simulator: conservation, claims, failure semantics


class TestDecodeSimulator:
    def test_every_completion_decodes_its_sampled_length(self):
        trace = decode_trace(qps=2000, num_requests=100, seed=7,
                             prompt_tokens=(2, 8), mean_output_tokens=6.0,
                             max_output_tokens=24)
        sim = DecodeSimulator(tiny_cost(), DecodePolicy(max_width=8,
                                                        max_tokens=24))
        result = sim.run(trace)
        assert not result.rejected and not result.lost
        assert len(result.completions) == len(trace)
        for done in result.completions:
            assert done.tokens_out == done.request.output_tokens
        assert (result.num_decode_tokens
                == sum(r.output_tokens for r in trace))

    def test_continuous_beats_request_level_on_mixed_lengths(self):
        """Claim 1 at unit scale: same saturated mixed-length trace, same
        cost model — iteration-level batching finishes sooner and holds a
        lower tail, because EOS frees a slot immediately instead of
        pinning it until the batch's longest member finishes."""
        trace = decode_trace(qps=50_000, num_requests=200, seed=3,
                             prompt_tokens=(2, 8), mean_output_tokens=8.0,
                             max_output_tokens=32)
        cost = tiny_cost(weights_bytes=100_000_000)

        def run(continuous):
            sim = DecodeSimulator(cost, DecodePolicy(max_width=8,
                                                     max_tokens=32),
                                  continuous=continuous)
            return sim.run(trace).stats()

        cont, reql = run(True), run(False)
        assert cont.tokens_per_second > reql.tokens_per_second
        assert cont.latency_p99_ms <= reql.latency_p99_ms

    def test_lane_failure_loses_residents_loudly_with_partial_tokens(self):
        trace = decode_trace(qps=5000, num_requests=60, seed=1,
                             prompt_tokens=(2, 4), mean_output_tokens=16.0,
                             max_output_tokens=64)
        kill_at = trace[20].arrival
        telemetry = Telemetry()
        sim = DecodeSimulator(
            tiny_cost(), DecodePolicy(max_width=8, max_tokens=64),
            failures=[FailureEvent(time=kill_at, replica=0)])
        result = sim.run(trace, telemetry=telemetry)
        assert result.lost, 'the kill must strand someone'
        assert not result.completions or all(
            c.completion < kill_at for c in result.completions)
        # lost spans carry the partial token counts (no silent truncation:
        # nothing lost ever shows up as a completion)
        telemetry.tracer.assert_invariants()
        tokens = telemetry.tracer.token_counts()
        assert tokens['complete'] + tokens['lost'] == result.num_decode_tokens
        lost_ids = {r.req_id for r in result.lost}
        done_ids = {c.request.req_id for c in result.completions}
        assert not (lost_ids & done_ids)

    def test_oversized_request_is_rejected_not_deadlocked(self):
        cost = tiny_cost()
        sim = DecodeSimulator(cost, DecodePolicy(max_width=2, max_tokens=64),
                              kv_bytes_per_token=1, kv_capacity_bytes=32)
        trace = [_decode_request(0, prompt=8, output=60, arrival=0.0),
                 _decode_request(1, prompt=4, output=8, arrival=1e-4)]
        result = sim.run(trace)
        assert [r.req_id for r in result.rejected] == [0]
        assert [c.request.req_id for c in result.completions] == [1]

    def test_identical_runs_are_identical(self):
        trace = decode_trace(qps=3000, num_requests=80, seed=5)
        cost = tiny_cost()

        def run():
            sim = DecodeSimulator(cost, DecodePolicy(max_width=8,
                                                     max_tokens=128),
                                  num_replicas=2)
            result = sim.run(trace)
            return [(c.request.req_id, c.completion, c.tokens_out,
                     c.replica) for c in result.completions]

        assert run() == run()


# ---------------------------------------------------------------------------
# satellite: property-based token conservation under arbitrary schedules


@st.composite
def decode_scenarios(draw):
    """A seeded trace plus a random kill/revive/scale-up schedule."""
    seed = draw(st.integers(0, 2**16))
    num_requests = draw(st.integers(10, 60))
    qps = draw(st.sampled_from([500.0, 2000.0, 10_000.0]))
    num_replicas = draw(st.integers(1, 3))
    trace = decode_trace(qps=qps, num_requests=num_requests, seed=seed,
                         prompt_tokens=(2, 8), mean_output_tokens=6.0,
                         max_output_tokens=24)
    span = trace[-1].arrival or 1e-3
    failures = []
    for replica in range(draw(st.integers(0, num_replicas))):
        at = span * draw(st.floats(0.05, 0.95))
        revive = (at + span * draw(st.floats(0.05, 0.5))
                  if draw(st.booleans()) else None)
        failures.append(FailureEvent(time=at, replica=replica,
                                     revive_at=revive))
    joins = [span * draw(st.floats(0.05, 0.95))
             for _ in range(draw(st.integers(0, 2)))]
    admission = draw(st.sampled_from(['reserve', 'unbounded']))
    capacity = draw(st.sampled_from([200, 1000, 100_000]))
    return trace, num_replicas, failures, joins, admission, capacity


class TestTokenConservationProperty:
    @given(decode_scenarios())
    @settings(max_examples=25, deadline=None)
    def test_tokens_are_conserved_under_any_schedule(self, scenario):
        """The conservation law: every arrival terminates exactly once;
        completions decode exactly their sampled length; every emitted
        token is attributed to a completed or a lost span; and the span
        ledger reconciles with the stats fold at token granularity."""
        trace, num_replicas, failures, joins, admission, capacity = scenario
        telemetry = Telemetry()
        sim = DecodeSimulator(
            tiny_cost(), DecodePolicy(max_width=8, admission=admission,
                                      max_tokens=24),
            kv_bytes_per_token=1, kv_capacity_bytes=capacity,
            num_replicas=num_replicas, failures=failures, joins=joins)
        result = sim.run(trace, telemetry=telemetry)
        stats = result.stats(telemetry=telemetry)

        # request conservation: completed + rejected + lost == offered
        assert (len(result.completions) + len(result.rejected)
                + len(result.lost) == len(trace))
        # no request is both lost and completed
        assert not ({r.req_id for r in result.lost}
                    & {c.request.req_id for c in result.completions})
        # completions are never truncated
        for done in result.completions:
            assert done.tokens_out == done.request.output_tokens

        # the span ledger closes and reconciles with the fold
        telemetry.tracer.assert_invariants()
        counts = telemetry.tracer.terminal_counts()
        assert counts['open'] == 0
        assert counts['complete'] == stats.num_requests
        assert counts['reject'] == stats.num_rejected
        assert counts['lost'] == stats.num_lost_to_failure
        assert sum(counts[k] for k in TERMINAL_KINDS) == len(trace)

        # ... down to the token: emitted == completed-span + lost-span tokens
        tokens = telemetry.tracer.token_counts()
        assert tokens['open'] == 0
        assert (tokens['complete'] + tokens['lost']
                == stats.num_decode_tokens)
        assert tokens['complete'] == sum(c.tokens_out
                                         for c in result.completions)

    @given(decode_scenarios())
    @settings(max_examples=15, deadline=None)
    def test_reserve_kv_never_exceeds_capacity_at_any_instant(self, scenario):
        """The KV invariant, at every simulated instant: under reserve
        admission the committed bytes of every lane stay within capacity
        through joins, EOS churn, failures, and mid-trace scale-up."""
        trace, num_replicas, failures, joins, _, capacity = scenario
        sim = DecodeSimulator(
            tiny_cost(), DecodePolicy(max_width=8, admission='reserve',
                                      max_tokens=24),
            kv_bytes_per_token=1, kv_capacity_bytes=capacity,
            num_replicas=num_replicas, failures=failures, joins=joins,
            record_kv_trail=True)
        result = sim.run(trace)
        assert result.kv_overflow_steps == 0
        for lane in sim.lanes:
            assert lane.ledger.trail is not None
            for now, committed in lane.ledger.trail:
                assert committed <= capacity, (
                    f'lane {lane.index} committed {committed} > capacity '
                    f'{capacity} at t={now}')
            assert lane.ledger.peak_committed_bytes <= capacity


# ---------------------------------------------------------------------------
# satellite: seeded determinism of the bench record and trace export


@pytest.fixture()
def bench_serving_module():
    sys.path.insert(0, str(BENCH_DIR))
    try:
        import bench_serving
        yield bench_serving
    finally:
        sys.path.remove(str(BENCH_DIR))


class TestDecodeByteDeterminism:
    def test_record_and_chrome_trace_are_byte_identical(
            self, bench_serving_module, tmp_path):
        """Identical seed + spec must reproduce the decode bench record and
        the Chrome trace export byte for byte — the PR 7/8 byte-stability
        discipline extended to the decode path."""
        paths = []
        for tag in ('a', 'b'):
            bench = tmp_path / f'bench_{tag}.json'
            trace = tmp_path / f'trace_{tag}.json'
            bench_serving_module.decode_smoke(bench_out=str(bench),
                                              trace_out=str(trace))
            paths.append((bench, trace))
        (bench_a, trace_a), (bench_b, trace_b) = paths
        assert bench_a.read_bytes() == bench_b.read_bytes()
        assert trace_a.read_bytes() == trace_b.read_bytes()
        # and the record actually carries the decode story
        doc = json.loads(bench_a.read_text())
        names = set(doc['metrics'])
        assert 'decode.throughput_gain' in names
        assert 'decode.reserve_kv_overflow_steps' in names
        assert all(n.startswith('decode.') for n in names)
