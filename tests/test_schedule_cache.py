"""The compilation cache: task signatures, schedule reuse, disk persistence.

Covers the acceptance property of the cache subsystem — a second
``optimize()`` of the same graph through a warmed :class:`ScheduleCache`
performs zero tuner measurements, charges zero simulated seconds, and yields
the identical modeled latency — plus regression tests for the tuner
cache-hit accounting, the empty-reduce-space fallback, and the batched
split-k decision surfacing.
"""
import math

import numpy as np
import pytest

from repro.core.schedule import MatmulSchedule, ReduceSchedule
from repro.core.tuning import MatmulTuner
from repro.graph import from_numpy, ops, symbol, trace
from repro.gpusim import RTX3090, A100, SimulatedClock
from repro.models.common import WeightFactory, conv_bn_relu
from repro.runtime import (HidetExecutor, ScheduleCache, default_schedule_cache,
                           optimize, task_signature)
from repro.runtime.cache import CACHE_FORMAT_VERSION, CacheEntry

RNG = np.random.default_rng(11)


def small_cnn():
    x = symbol([1, 4, 12, 12], name='x')
    wf = WeightFactory(5)
    y = conv_bn_relu(wf, x, 8, kernel=3, padding=1, name='c1')
    y = conv_bn_relu(wf, y, 8, kernel=3, padding=1, name='c2')
    y = ops.global_avg_pool(y)
    return trace(y, name='cache_cnn')


def softmax_graph(rows=4, cols=512):
    x = symbol([rows, cols], name='x')
    return trace(ops.softmax(x), name='cache_softmax')


class TestTaskSignature:
    def test_stable_across_rebuilds(self):
        """The same model built twice yields identical signatures."""
        def sigs(graph):
            return sorted(task_signature(op.task, RTX3090)
                          for op in graph.nodes)
        assert sigs(small_cnn()) == sigs(small_cnn())

    def test_distinguishes_shapes_and_devices(self):
        a = symbol([32, 64], name='a')
        t1 = ops.MatmulOp(a, from_numpy(
            RNG.standard_normal((64, 16)).astype(np.float32))).task
        b = symbol([32, 128], name='b')
        t2 = ops.MatmulOp(b, from_numpy(
            RNG.standard_normal((128, 16)).astype(np.float32))).task
        assert task_signature(t1, RTX3090) != task_signature(t2, RTX3090)
        assert task_signature(t1, RTX3090) != task_signature(t1, A100)
        assert task_signature(t1, RTX3090) == task_signature(t1, RTX3090)

    def test_extras_and_fusion_change_signature(self):
        task = small_cnn().nodes[0].task
        assert (task_signature(task, RTX3090, extras=('matmul', True))
                != task_signature(task, RTX3090, extras=('matmul', False)))
        assert (task_signature(task, RTX3090, fusion=(('p',), ()))
                != task_signature(task, RTX3090, fusion=None))


class TestScheduleCacheCore:
    def test_hit_miss_accounting_and_kind_guard(self):
        cache = ScheduleCache()
        assert cache.get('sig', kind='matmul') is None
        cache.put('sig', 'matmul', MatmulSchedule())
        assert cache.get('sig', kind='matmul') == MatmulSchedule()
        # a reduce lookup must not be served a matmul schedule
        assert cache.get('sig', kind='reduce') is None
        assert cache.stats == {'entries': 1, 'hits': 1, 'misses': 2,
                               'transfer_hits': 0, 'device_transfer_hits': 0,
                               'evictions': 0}
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_disk_round_trip(self, tmp_path):
        cache = ScheduleCache()
        msched = MatmulSchedule(block_warps=(2, 4), warp_outer=(1, 2),
                                block_k=16, double_buffer=False, split_k=4)
        rsched = ReduceSchedule(block_size=128, items_per_thread=2)
        cache.put('m-sig', 'matmul', msched)
        cache.put('r-sig', 'reduce', rsched)
        path = str(tmp_path / 'schedules.json')
        cache.save(path)

        loaded = ScheduleCache.load(path)
        assert len(loaded) == 2
        assert loaded.get('m-sig', kind='matmul') == msched
        assert loaded.get('r-sig', kind='reduce') == rsched
        # loaded schedules are real frozen dataclasses, not dicts
        assert loaded.get('m-sig', kind='matmul').block_m == msched.block_m

    def test_version_field_written_and_checked(self, tmp_path):
        cache = ScheduleCache()
        cache.put('s', 'matmul', MatmulSchedule())
        data = cache.to_json()
        assert data['version'] == CACHE_FORMAT_VERSION
        with pytest.raises(ValueError, match='version'):
            ScheduleCache().merge_json({'version': -1, 'entries': {}})

    def test_unknown_schedule_kind_rejected(self):
        with pytest.raises(ValueError, match='kind'):
            CacheEntry.from_json({'kind': 'conv3d', 'schedule': {}})


class TestWarmCompile:
    def test_warm_optimize_charges_nothing_and_matches_latency(self):
        graph = small_cnn()
        cache = ScheduleCache()
        cold_clock = SimulatedClock()
        cold = optimize(graph, clock=cold_clock, cache=cache)
        assert cold.tuning_seconds > 0
        assert cold.cache_misses > 0

        warm_clock = SimulatedClock()
        warm = optimize(graph, clock=warm_clock, cache=cache)
        assert warm_clock.elapsed_seconds == 0.0     # zero simulated seconds
        assert warm_clock.events == []               # zero tuner measurements
        assert warm.tuning_seconds == 0.0
        assert warm.cache_misses == 0 and warm.cache_hits > 0
        assert warm.latency == cold.latency          # identical modeled latency

    def test_warm_from_disk_in_fresh_process_emulation(self, tmp_path):
        """Rebuild the model AND reload the cache: still a zero-cost compile."""
        cache = ScheduleCache()
        cold = HidetExecutor(cache=cache).compile(small_cnn())
        path = str(tmp_path / 'cnn.schedules.json')
        cache.save(path)

        warmed = ScheduleCache.load(path)
        executor = HidetExecutor(cache=warmed)
        warm = executor.compile(small_cnn())         # freshly built graph
        assert warm.tuning_seconds == 0.0
        assert executor.clock.events == []
        assert warm.cache_misses == 0
        assert warm.latency == cold.latency

    def test_cache_shared_across_executor_instances(self):
        graph = small_cnn()
        cache = ScheduleCache()
        HidetExecutor(cache=cache).compile(graph)
        second = HidetExecutor(cache=cache)
        compiled = second.compile(graph)
        assert compiled.tuning_seconds == 0.0 and compiled.cache_misses == 0

    def test_default_cache_is_process_wide(self):
        assert default_schedule_cache() is default_schedule_cache()
        e1, e2 = HidetExecutor(), HidetExecutor()
        assert e1.cache is e2.cache is default_schedule_cache()

    def test_restricted_space_does_not_consume_full_space_records(self):
        graph = small_cnn()
        cache = ScheduleCache()
        HidetExecutor(cache=cache, double_buffer=True).compile(graph)
        sb = HidetExecutor(cache=cache, double_buffer=False).compile(graph)
        # different space fingerprint -> cold for the matmul groups
        assert sb.tuning_seconds > 0

    def test_reduce_schedules_cached_too(self):
        graph = softmax_graph()
        cache = ScheduleCache()
        cold = HidetExecutor(cache=cache).compile(graph)
        assert any(op.kind == 'reduce_template' for op in cold.ops)
        warm = HidetExecutor(cache=cache).compile(softmax_graph())
        assert warm.cache_misses == 0
        assert warm.latency == cold.latency

    def test_prologue_constants_distinguish_signatures(self):
        """Regression: groups differing only in prologue constants (clip
        bounds) must not share a signature — or the IR cache would serve the
        wrong fused module."""
        w = from_numpy(RNG.standard_normal((4, 4)).astype(np.float32))
        g1 = trace(ops.matmul(ops.clip(symbol([4, 4], name='x'), 0.0, 6.0), w))
        g2 = trace(ops.matmul(ops.clip(symbol([4, 4], name='x'), -1.0, 1.0), w))
        executor = HidetExecutor(cache=ScheduleCache(), build_ir=True)
        c1 = executor.compile(g1)
        c2 = executor.compile(g2)
        assert c1.ops[0].module is not c2.ops[0].module
        x = RNG.standard_normal((4, 4)).astype(np.float32)
        np.testing.assert_allclose(c2.run(x)[0], g2.run(x)[0],
                                   rtol=1e-4, atol=1e-5)

    def test_ir_cache_reuses_built_modules(self):
        graph = small_cnn()
        executor = HidetExecutor(cache=ScheduleCache(), build_ir=True)
        first = executor.compile(graph)
        assert len(executor._ir_cache) > 0
        second = executor.compile(graph)
        for a, b in zip(first.ops, second.ops):
            if a.module is not None:
                assert a.module is b.module          # lowered exactly once


class TestTunerHitAccounting:
    def test_cache_hit_reports_zero_tuning_seconds(self):
        """Regression: a hit used to report the original tuning time."""
        clock = SimulatedClock()
        tuner = MatmulTuner(RTX3090, clock=clock)
        first = tuner.tune(384, 384, 384)
        assert first.tuning_seconds > 0
        elapsed = clock.elapsed_seconds
        hit = tuner.tune(384, 384, 384)
        assert hit.tuning_seconds == 0.0
        assert clock.elapsed_seconds == elapsed
        assert hit.best_schedule == first.best_schedule
        assert hit.best_latency == first.best_latency


class TestReduceFallback:
    def test_empty_reduce_space_falls_back_to_rule_based(self, monkeypatch):
        """Regression: ``best_sched=None`` used to crash ``reduce_stats``."""
        monkeypatch.setattr('repro.runtime.executor.reduce_schedule_space',
                            lambda device: [])
        graph = softmax_graph()
        compiled = HidetExecutor(cache=ScheduleCache()).compile(graph)
        assert all(op.kind != 'reduce_template' for op in compiled.ops)
        assert any(op.kind == 'rule_based' for op in compiled.ops)
        x = RNG.standard_normal((4, 512)).astype(np.float32)
        np.testing.assert_allclose(compiled.run(x)[0], graph.run(x)[0],
                                   rtol=1e-4, atol=1e-5)


class TestSplitKDecision:
    def test_batched_matmul_disables_split_k_visibly(self):
        tuner = MatmulTuner(RTX3090)
        batched = tuner.tune(196, 512, 4608, batch=8, try_split_k=True)
        assert batched.split_k_tried is False
        assert 'batch=8' in batched.split_k_disabled_reason
        assert batched.best_schedule.split_k == 1

    def test_unbatched_small_output_tries_split_k(self):
        tuner = MatmulTuner(RTX3090)
        single = tuner.tune(196, 512, 4608, batch=1, try_split_k=True)
        assert single.split_k_tried is True
        assert single.split_k_disabled_reason is None
        assert single.best_schedule.split_k > 1

    def test_caller_opt_out_is_not_reported_as_batch_disable(self):
        tuner = MatmulTuner(RTX3090)
        result = tuner.tune(256, 256, 256, try_split_k=False)
        assert result.split_k_tried is False
        assert result.split_k_disabled_reason is None

    def test_opt_out_does_not_alias_batch_disable_in_tuner_cache(self):
        """Regression: both calls enumerate the same space, but the cached
        result must keep each caller's own split-k decision metadata."""
        tuner = MatmulTuner(RTX3090)
        forced = tuner.tune(196, 512, 4608, batch=8, try_split_k=True)
        opted_out = tuner.tune(196, 512, 4608, batch=8, try_split_k=False)
        assert forced.split_k_disabled_reason is not None
        assert opted_out.split_k_disabled_reason is None
        assert opted_out.best_latency == forced.best_latency
