"""The learned tuning layer: featurization, the ridge cost model, the
calibrated fallback, the parallel service, and the deployment spec fields.

The determinism tests are the contract the bench gate stands on: every
quantity in the tuning trajectory is simulated, so two runs from the same
inputs must agree *byte-for-byte* — feature vectors, candidate rankings,
and the `BENCH_tuning.json` record itself.  The adversarial test is the
safety contract: a confidently-wrong model must cost wasted ranking, never
a bad schedule.
"""
import importlib
import pathlib
import sys

import pytest

from repro.core.space import matmul_schedule_space
from repro.core.tuning import HIDET_TUNING_COSTS, MatmulTuner
from repro.gpusim.clock import SimulatedClock
from repro.gpusim.device import RTX3090
from repro.runtime import HidetExecutor, ScheduleCache
from repro.runtime.cache import MeasurementRecord
from repro.serve import (CacheSpec, DeploymentSpec, ModelSpec,
                         SpecValidationError)
from repro.serve.deployment import BatchingSpec, ReplicaGroupSpec
from repro.tune import (DEFAULT_SEED_PROBLEMS, FEATURE_NAMES, RidgeCostModel,
                        featurize, run_tuning_service, seed_cost_model,
                        shard_problems)

BENCH_DIR = pathlib.Path(__file__).resolve().parent.parent / 'benchmarks'

SPACE = list(matmul_schedule_space(RTX3090))


def _seeded_cache(problems=((128, 768, 768, 1), (512, 512, 512, 1),
                            (784, 128, 1152, 1))):
    cache = ScheduleCache()
    seed_cost_model(cache, RTX3090, problems=problems, space_stride=4)
    return cache


def _tuner():
    return MatmulTuner(RTX3090, HIDET_TUNING_COSTS, SimulatedClock())


class TestFeaturization:
    def test_vector_matches_feature_names(self):
        vec = featurize(512, 512, 512, SPACE[0], device=RTX3090)
        assert len(vec) == len(FEATURE_NAMES)
        assert all(isinstance(x, float) for x in vec)

    def test_featurize_is_deterministic(self):
        args = (300, 768, 768, SPACE[3])
        a = featurize(*args, device=RTX3090, batch=2, extra_read_bytes=1e4)
        b = featurize(*args, device=RTX3090, batch=2, extra_read_bytes=1e4)
        assert a == b                    # bit-for-bit, not approximately

    def test_feature_names_are_append_only(self):
        """The layout is a contract: in-memory fitted models index by
        position, so renames/reorders of the prefix are breaking."""
        assert FEATURE_NAMES[:4] == ('log2_m', 'log2_n', 'log2_k',
                                     'log2_batch')
        assert 'occupancy' in FEATURE_NAMES
        assert FEATURE_NAMES[-1] == 'log2_roofline_plus_overhead'

    def test_fused_traffic_changes_the_vector(self):
        plain = featurize(512, 512, 512, SPACE[0], device=RTX3090)
        fused = featurize(512, 512, 512, SPACE[0], device=RTX3090,
                          extra_read_bytes=1 << 20)
        assert plain != fused


class TestCostModelDeterminism:
    def test_same_cache_contents_give_identical_ranking(self):
        cache = _seeded_cache()
        first = RidgeCostModel(RTX3090).bind(cache).rank(256, 768, 768, SPACE)
        second = RidgeCostModel(RTX3090).bind(cache).rank(256, 768, 768, SPACE)
        assert first is not None
        assert first == second           # schedules AND predicted latencies

    def test_fit_is_order_independent(self):
        """Records are sorted by canonical key before fitting, so the
        order measurements were taken in cannot leak into the weights."""
        cache = _seeded_cache()
        reversed_cache = ScheduleCache()
        for record in reversed(cache.measurements()):
            reversed_cache.record_measurement(record)
        a = RidgeCostModel(RTX3090).bind(cache)
        b = RidgeCostModel(RTX3090).bind(reversed_cache)
        assert a.rank(49, 2048, 512, SPACE) == b.rank(49, 2048, 512, SPACE)
        assert a.train_r2 == b.train_r2

    def test_underfit_model_refuses_to_rank(self):
        cold = RidgeCostModel(RTX3090).bind(ScheduleCache())
        assert cold.rank(512, 512, 512, SPACE) is None
        assert not cold.ready


class TestGuidedTuning:
    def test_guided_tune_measures_only_top_k(self):
        model = RidgeCostModel(RTX3090).bind(_seeded_cache())
        result = _tuner().tune(256, 768, 768, cost_model=model)
        assert result.used_cost_model
        assert result.fallback_reason is None
        assert result.num_measured == model.top_k
        assert result.num_candidates > 5 * result.num_measured

    def test_underfit_fallback_measures_everything(self):
        cold = RidgeCostModel(RTX3090).bind(ScheduleCache())
        result = _tuner().tune(256, 768, 768, cost_model=cold)
        assert not result.used_cost_model
        assert result.fallback_reason.startswith('underfit')
        assert result.num_measured == result.num_candidates

    def test_adversarial_model_trips_the_calibration_gate(self):
        """A confidently-wrong model — trained on *inverted* latencies, so
        it ranks the worst candidates first with high in-sample R² — must
        be caught by the post-measurement calibration check and land on
        the exhaustive optimum (within the 2% acceptance bound; in fact
        exactly on it, since the fallback measures every candidate)."""
        space = SPACE[::4]
        cache = ScheduleCache()
        tuner = _tuner()
        for m, n, k in ((128, 768, 768), (512, 512, 512)):
            truth = tuner.tune(m, n, k, space=space)
            for sched, latency in truth.latencies.items():
                cache.record_measurement(MeasurementRecord(
                    kind='matmul', m=m, n=n, k=k, batch=1, schedule=sched,
                    latency=1e-9 / latency))        # inverted: worst looks best
        liar = RidgeCostModel(RTX3090).bind(cache)
        assert liar.rank(256, 768, 768, space) is not None, \
            'the distortion must still be learnable (fit passes readiness)'
        assert liar.train_r2 >= liar.min_r2

        guided = _tuner().tune(256, 768, 768, space=space, cost_model=liar)
        exhaustive = _tuner().tune(256, 768, 768, space=space)
        assert guided.used_cost_model
        assert guided.fallback_reason.startswith('miscalibrated')
        assert guided.num_measured == guided.num_candidates
        assert guided.best_latency <= 1.02 * exhaustive.best_latency
        assert guided.best_schedule == exhaustive.best_schedule

    def test_executor_reports_guided_counters(self):
        cache = _seeded_cache(problems=DEFAULT_SEED_PROBLEMS[:4])
        seed_measurements = cache.measurement_count
        model = RidgeCostModel(RTX3090)
        executor = HidetExecutor(RTX3090, cache=cache, cost_model=model)
        from repro.models.common import WeightFactory, linear
        from repro.graph import ops, symbol, trace
        # transformer-projection shapes the seed corpus covers, so the
        # model calibrates and the executor takes the ranked shortcut
        x = symbol([128, 768], name='x')
        wf = WeightFactory(seed=3)
        y = ops.relu(linear(wf, x, 768, name='fc1'))
        compiled = executor.compile(trace(linear(wf, y, 3072, name='fc2'),
                                          name='mlp'))
        report = compiled.compile_report
        assert report.tuned_tasks > 0
        assert report.ranked_tasks == report.tuned_tasks
        assert report.cost_model_fallbacks == 0
        assert 0 < report.measurements_per_task <= model.top_k
        # guided executors record what they measure: later compiles train
        # on this model's measurements too
        assert cache.measurement_count > seed_measurements


class TestParallelServiceSharding:
    def test_sharding_keeps_measurement_groups_together(self):
        cache = ScheduleCache()
        executor = HidetExecutor(RTX3090, cache=cache)
        from repro.models import for_batch
        problems = list(executor.tuning_problems(for_batch('bert', 1),
                                                 namespace='bert'))
        shards = shard_problems(problems, 4)
        assert sum(len(s) for s in shards) == len(problems)
        key = lambda p: (p.m, p.n, p.k, p.batch, p.extra_read_bytes,
                         p.extra_write_bytes)
        owner = {}
        for index, shard in enumerate(shards):
            for problem in shard:
                assert owner.setdefault(key(problem), index) == index, (
                    'measurement-equivalent problems split across workers')

    def test_sharding_is_deterministic(self):
        cache = ScheduleCache()
        executor = HidetExecutor(RTX3090, cache=cache)
        from repro.models import for_batch
        problems = list(executor.tuning_problems(for_batch('gpt2', 1),
                                                 namespace='gpt2'))
        assert shard_problems(problems, 3) == \
            shard_problems(list(problems), 3)


class TestBenchRecordDeterminism:
    def test_bench_tuning_json_is_byte_identical_across_runs(self, tmp_path):
        """Two reduced trajectory runs (same inputs, pinned harness wall)
        must serialize to byte-identical BENCH_tuning.json records —
        everything in them is simulated, so any drift is nondeterminism.

        The comparison arms (tuner hours, cache reuse) are pinned
        constants here: their determinism is the bench gate's own
        concern; what this test pins is the new trajectory/service
        metrics flowing through ``_tuning_bench`` into the record."""
        sys.path.insert(0, str(BENCH_DIR))
        try:
            bench = importlib.import_module('bench_fig17_tuning_cost')
            common = importlib.import_module('common')
            from repro.experiments import (run_analysis_gate,
                                           run_cost_model_trajectory,
                                           run_parallel_tuning)
            from repro.experiments.tuning_cost import CacheReuseRow
            hours = {'hidet': 0.25, 'autotvm': 5.0, 'ansor': 2.5}
            reuse = CacheReuseRow(model='pinned', cold_seconds=100.0,
                                  warm_seconds=0.0, cold_latency_ms=1.0,
                                  warm_latency_ms=1.0, warm_hits=1,
                                  warm_misses=0, cache_entries=1)

            def one_run(tag: str) -> bytes:
                trajectory = run_cost_model_trajectory(
                    models=['gpt2'],
                    seed_problems=DEFAULT_SEED_PROBLEMS[:6])
                service = run_parallel_tuning(models=['gpt2'],
                                              num_workers=2)
                gate = run_analysis_gate()
                record = bench._tuning_bench(hours, reuse, trajectory,
                                             service, gate,
                                             wall_seconds=0.0)
                path = common.write_bench(record,
                                          str(tmp_path / f'{tag}.json'))
                return pathlib.Path(path).read_bytes()

            assert one_run('first') == one_run('second')
        finally:
            sys.path.remove(str(BENCH_DIR))


class TestDeploymentSpecFields:
    def _spec(self, **cache_kwargs):
        return DeploymentSpec(
            models=(ModelSpec('bert', max_batch=1, buckets=(1,)),),
            replicas=(ReplicaGroupSpec(device='RTX3090', count=1),),
            batching=BatchingSpec(max_batch=1),
            cache=CacheSpec(**cache_kwargs))

    def test_cache_spec_round_trips_new_fields(self):
        spec = self._spec(warm_from='warm.jsonl', cost_model=True,
                          tuning_workers=4)
        restored = DeploymentSpec.from_dict(spec.to_dict())
        assert restored.cache.cost_model is True
        assert restored.cache.tuning_workers == 4
        assert restored == spec

    def test_defaults_are_off(self):
        spec = self._spec()
        assert spec.cache.cost_model is False
        assert spec.cache.tuning_workers == 1
        spec.validate()

    def test_tuning_workers_must_be_positive(self):
        with pytest.raises(SpecValidationError, match='tuning_workers'):
            self._spec(tuning_workers=0).validate()

    def test_parallel_pretune_requires_warm_from(self):
        with pytest.raises(SpecValidationError, match='warm_from'):
            self._spec(tuning_workers=2).validate()

    def test_registry_and_fleet_thread_the_cost_model(self):
        from repro.serve import Fleet, ModelAffinePlacement
        fleet = Fleet([RTX3090], placement=ModelAffinePlacement(),
                      cost_model=True)
        from repro.models.common import WeightFactory, linear
        from repro.graph import ops, symbol, trace

        def tiny(batch):
            x = symbol([batch, 64], name='x')
            wf = WeightFactory(seed=11)
            return trace(linear(wf, ops.relu(linear(wf, x, 128, name='a')),
                                32, name='b'), name=f'tiny_b{batch}')

        fleet.register('tiny', tiny, max_batch=1)
        fleet.build()
        registry = fleet.replicas[0].registry
        assert registry.cost_model is not None
        assert registry.cost_model.source is registry.cache


class TestTuningService:
    def test_warm_service_run_is_free(self, tmp_path):
        from repro.models.common import WeightFactory, linear
        from repro.graph import ops, symbol, trace
        x = symbol([16, 128], name='x')
        wf = WeightFactory(seed=2)
        graph = trace(linear(wf, ops.relu(linear(wf, x, 256, name='a')),
                             64, name='b'), name='svc_mlp')
        log = str(tmp_path / 'svc.jsonl')
        cold = run_tuning_service([('m', graph)], device=RTX3090,
                                  num_workers=2, log_path=log)
        assert cold.total_problems > 0
        assert cold.wall_seconds > 0.0
        warm = run_tuning_service([('m', graph)], device=RTX3090,
                                  num_workers=2, log_path=log)
        assert warm.warm_hits == cold.total_problems
        assert warm.wall_seconds == 0.0
