"""The serving subsystem: registry, batcher, simulator — and the cache
satellites that back it (LRU eviction, merge-on-save, schedule transfer,
compile/serve accounting split).
"""
import math

import numpy as np
import pytest

from repro.core.schedule import MatmulSchedule
from repro.graph import ops, symbol, trace
from repro.models import bert_base
from repro.models.common import WeightFactory, conv_bn_relu
from repro.runtime import (CompileReport, HidetExecutor, ScheduleCache,
                           task_family_signature)
from repro.serve import (BatchingPolicy, DynamicBatcher, ModelRegistry,
                         Request, ServerSimulator, bucket_ladder, bursty_trace,
                         format_serving_report, merge_traces, poisson_trace,
                         smallest_covering_bucket)

RNG = np.random.default_rng(7)


def tiny_cnn(batch: int):
    x = symbol([batch, 4, 12, 12], name='x')
    wf = WeightFactory(5)
    y = conv_bn_relu(wf, x, 8, kernel=3, padding=1, name='c1')
    y = ops.global_avg_pool(y)
    return trace(y, name=f'tiny_b{batch}')


@pytest.fixture(scope='module')
def registry():
    reg = ModelRegistry()
    reg.register('tiny', tiny_cnn, max_batch=8)
    return reg


# ---------------------------------------------------------------------------
# cache satellites


class TestCacheLRU:
    def test_eviction_order_and_counter(self):
        cache = ScheduleCache(max_entries=2)
        cache.put('a', 'matmul', MatmulSchedule())
        cache.put('b', 'matmul', MatmulSchedule())
        cache.put('c', 'matmul', MatmulSchedule())       # evicts 'a'
        assert 'a' not in cache and 'b' in cache and 'c' in cache
        assert cache.stats['evictions'] == 1

    def test_hit_refreshes_recency(self):
        cache = ScheduleCache(max_entries=2)
        cache.put('a', 'matmul', MatmulSchedule())
        cache.put('b', 'matmul', MatmulSchedule())
        assert cache.get('a', kind='matmul') is not None  # 'a' is now young
        cache.put('c', 'matmul', MatmulSchedule())        # evicts 'b', not 'a'
        assert 'a' in cache and 'b' not in cache

    def test_unbounded_by_default(self):
        cache = ScheduleCache()
        for i in range(100):
            cache.put(f's{i}', 'matmul', MatmulSchedule())
        assert len(cache) == 100 and cache.stats['evictions'] == 0

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError, match='max_entries'):
            ScheduleCache(max_entries=0)


class TestMergeOnSave:
    def test_two_caches_saving_interleaved_do_not_clobber(self, tmp_path):
        path = str(tmp_path / 'shared.json')
        a, b = ScheduleCache(), ScheduleCache()
        a.put('sig-a', 'matmul', MatmulSchedule())
        b.put('sig-b', 'matmul', MatmulSchedule(block_k=16))
        a.save(path)
        b.save(path)                     # last writer used to win outright
        merged = ScheduleCache.load(path)
        assert 'sig-a' in merged and 'sig-b' in merged

    def test_memory_wins_conflicts(self, tmp_path):
        path = str(tmp_path / 'shared.json')
        a, b = ScheduleCache(), ScheduleCache()
        a.put('sig', 'matmul', MatmulSchedule(block_k=8))
        a.save(path)
        b.put('sig', 'matmul', MatmulSchedule(block_k=16))
        b.save(path)
        assert ScheduleCache.load(path).get('sig', 'matmul').block_k == 16

    def test_version_mismatch_file_is_overwritten(self, tmp_path):
        path = tmp_path / 'old.json'
        path.write_text('{"version": -1, "entries": {"x": {}}}')
        cache = ScheduleCache()
        cache.put('sig', 'matmul', MatmulSchedule())
        cache.save(str(path))
        assert 'x' not in ScheduleCache.load(str(path))

    def test_warm_count_respects_entry_cap(self, tmp_path):
        path = str(tmp_path / 'big.json')
        big = ScheduleCache()
        for i in range(5):
            big.put(f's{i}', 'matmul', MatmulSchedule())
        big.save(path)
        capped = ScheduleCache(max_entries=2)
        added = capped.warm(path)
        assert added == len(capped) == 2     # not 5: merged entries evicted

    def test_namespace_slice_save(self, tmp_path):
        cache = ScheduleCache()
        cache.put('r1', 'matmul', MatmulSchedule(), namespace='resnet')
        cache.put('b1', 'matmul', MatmulSchedule(), namespace='bert')
        assert cache.namespace_stats() == {'resnet': 1, 'bert': 1}
        path = str(tmp_path / 'resnet.json')
        cache.save(path, namespace='resnet')
        loaded = ScheduleCache.load(path)
        assert 'r1' in loaded and 'b1' not in loaded
        assert loaded.namespace_stats() == {'resnet': 1}


class TestScheduleTransfer:
    def test_family_signature_ignores_batch_sizes_only(self):
        from repro.gpusim import RTX3090
        from repro.graph import from_numpy
        g1 = tiny_cnn(1).nodes[0].task
        g8 = tiny_cnn(8).nodes[0].task
        assert task_family_signature(g1, RTX3090) == task_family_signature(g8, RTX3090)
        # different layers (different n/k) must NOT share a family — or a
        # cold compile would serve one layer another layer's schedule
        def mm(m, n, k):
            a = symbol([m, k], name='a')
            w = from_numpy(RNG.standard_normal((k, n)).astype(np.float32))
            return trace(ops.matmul(a, w)).nodes[0].task
        assert (task_family_signature(mm(32, 64, 128), RTX3090)
                == task_family_signature(mm(256, 64, 128), RTX3090))
        assert (task_family_signature(mm(32, 64, 128), RTX3090)
                != task_family_signature(mm(32, 64, 256), RTX3090))
        assert (task_family_signature(mm(32, 64, 128), RTX3090)
                != task_family_signature(mm(32, 16, 128), RTX3090))

    def test_cold_compile_with_transfer_tunes_every_distinct_layer(self):
        """Regression: the family key must not collapse different layers, so
        a cold single-bucket compile with transfer on is fully tuned and
        reports the same modeled latency optimize() would."""
        def two_layer(batch):
            x = symbol([batch, 4, 12, 12], name='x')
            wf = WeightFactory(5)
            y = conv_bn_relu(wf, x, 8, kernel=3, padding=1, name='c1')
            y = conv_bn_relu(wf, y, 16, kernel=3, padding=1, name='c2')
            return trace(ops.global_avg_pool(y), name=f'two_b{batch}')

        plain = HidetExecutor(cache=ScheduleCache()).compile(two_layer(1))
        transf = HidetExecutor(cache=ScheduleCache(),
                               enable_transfer=True).compile(two_layer(1))
        assert transf.compile_report.transfer_hits == 0
        assert transf.tuning_seconds == plain.tuning_seconds
        assert transf.latency == plain.latency

    def test_second_bucket_pays_measurement_not_compilation(self):
        cache = ScheduleCache()
        ex = HidetExecutor(cache=cache, enable_transfer=True)
        cold = ex.compile(tiny_cnn(1))
        marker = len(ex.clock.events)
        warm = ex.compile(tiny_cnn(8))
        assert cold.compile_report.transfer_hits == 0
        assert warm.compile_report.transfer_hits > 0
        # the family's candidates are already compiled: the new size charges
        # measurements only (compilation dominates the tuning bill)
        labels = [label for label, _ in ex.clock.events[marker:]]
        assert labels and all(label.startswith('measure') for label in labels)
        assert 0 < warm.tuning_seconds < cold.tuning_seconds
        # and the schedule is still the true optimum for the new size:
        # identical modeled latency to an isolated full tune
        full = HidetExecutor(cache=ScheduleCache()).compile(tiny_cnn(8))
        assert warm.latency == full.latency

    def test_eviction_relinks_family_to_surviving_member(self):
        """Regression: evicting the newest family member must not disable
        the transfer tier while older members are still cached."""
        cache = ScheduleCache(max_entries=2)
        old = MatmulSchedule(block_k=8)
        cache.put('m-old', 'matmul', old, family='fam')
        cache.put('m-new', 'matmul', MatmulSchedule(block_k=16), family='fam')
        cache.get('m-old', kind='matmul')           # make 'm-new' the LRU
        cache.put('other', 'matmul', MatmulSchedule())   # evicts 'm-new'
        assert 'm-new' not in cache and 'm-old' in cache
        assert cache.get_transfer('fam', kind='matmul') == old

    def test_transfer_off_by_default(self):
        cache = ScheduleCache()
        ex = HidetExecutor(cache=cache)
        ex.compile(tiny_cnn(1))
        again = ex.compile(tiny_cnn(8))
        assert again.compile_report.transfer_hits == 0
        assert again.tuning_seconds > 0


class TestCompileReport:
    def test_accounting_split(self):
        compiled = HidetExecutor(cache=ScheduleCache()).compile(tiny_cnn(1))
        report = compiled.compile_report
        assert isinstance(report, CompileReport)
        assert report.tuning_seconds == compiled.tuning_seconds > 0
        assert report.cache_misses == compiled.cache_misses > 0
        # serve-time latency is not part of the compile report
        assert compiled.latency > 0


# ---------------------------------------------------------------------------
# traces


class TestTraces:
    def test_poisson_is_deterministic_and_ordered(self):
        a = poisson_trace(qps=100, num_requests=50, models=['m'], seed=3)
        b = poisson_trace(qps=100, num_requests=50, models=['m'], seed=3)
        assert a == b
        assert all(x.arrival <= y.arrival for x, y in zip(a, a[1:]))
        assert {r.model for r in a} == {'m'}

    def test_weighted_model_mix(self):
        tr = poisson_trace(qps=100, num_requests=400,
                           models={'hot': 9.0, 'cold': 1.0}, seed=0)
        hot = sum(r.model == 'hot' for r in tr)
        assert hot > 300

    def test_bursty_alternates_rates(self):
        tr = bursty_trace(burst_qps=1000, idle_qps=0, num_requests=100,
                          models=['m'], burst_seconds=0.05, idle_seconds=0.05,
                          seed=0)
        assert len(tr) == 100
        # with idle_qps=0 every arrival lands inside a burst phase
        assert all((r.arrival % 0.1) <= 0.05 + 1e-9 for r in tr)

    def test_merge_renumbers(self):
        a = poisson_trace(qps=10, num_requests=5, models=['x'], seed=1)
        b = poisson_trace(qps=10, num_requests=5, models=['y'], seed=2)
        merged = merge_traces(a, b)
        assert [r.req_id for r in merged] == list(range(10))
        assert all(p.arrival <= q.arrival for p, q in zip(merged, merged[1:]))

    def test_request_validation(self):
        with pytest.raises(ValueError, match='size'):
            Request(req_id=0, model='m', size=0, arrival=0.0)

    def test_bursty_phase_validation(self):
        """Regression: zero-length bursts with a silent trough used to spin
        forever instead of raising."""
        with pytest.raises(ValueError, match='burst_seconds'):
            bursty_trace(burst_qps=100, idle_qps=0, num_requests=10,
                         models=['m'], burst_seconds=0.0)


# ---------------------------------------------------------------------------
# batcher


class TestBatcher:
    def test_smallest_covering_bucket(self):
        buckets = (1, 2, 4, 8)
        assert [smallest_covering_bucket(s, buckets) for s in range(1, 9)] \
            == [1, 2, 4, 4, 8, 8, 8, 8]
        with pytest.raises(ValueError, match='covers'):
            smallest_covering_bucket(9, buckets)

    def test_full_batch_dispatches_without_waiting(self):
        batcher = DynamicBatcher(BatchingPolicy(max_batch=4, max_wait=1.0),
                                 {'m': (1, 2, 4)})
        for i in range(4):
            batcher.enqueue(Request(i, 'm', 1, arrival=0.0))
        batch = batcher.pop_ready(now=0.0)
        assert batch is not None and batch.size == 4 and batch.bucket == 4

    def test_partial_batch_waits_for_deadline(self):
        batcher = DynamicBatcher(BatchingPolicy(max_batch=4, max_wait=1e-3),
                                 {'m': (1, 2, 4)})
        batcher.enqueue(Request(0, 'm', 1, arrival=0.0))
        assert batcher.pop_ready(now=0.0) is None
        assert batcher.next_deadline() == pytest.approx(1e-3)
        batch = batcher.pop_ready(now=1e-3)
        assert batch is not None and batch.size == 1 and batch.bucket == 1

    def test_fifo_across_models(self):
        batcher = DynamicBatcher(BatchingPolicy(max_batch=2, max_wait=0.0),
                                 {'a': (2,), 'b': (2,)})
        batcher.enqueue(Request(0, 'b', 1, arrival=0.0))
        batcher.enqueue(Request(1, 'a', 1, arrival=0.5))
        assert batcher.pop_ready(now=1.0).model == 'b'
        assert batcher.pop_ready(now=1.0).model == 'a'

    def test_occupancy_accounts_padding(self):
        batcher = DynamicBatcher(BatchingPolicy(max_batch=8, max_wait=0.0),
                                 {'m': (1, 2, 4, 8)})
        for i in range(3):
            batcher.enqueue(Request(i, 'm', 1, arrival=0.0))
        batch = batcher.pop_ready(now=1.0)
        assert batch.bucket == 4 and batch.occupancy == pytest.approx(0.75)

    def test_oversized_request_rejected(self):
        batcher = DynamicBatcher(BatchingPolicy(max_batch=2, max_wait=0.0),
                                 {'m': (1, 2)})
        with pytest.raises(ValueError, match='max_batch'):
            batcher.enqueue(Request(0, 'm', 3, arrival=0.0))

    def test_policy_must_fit_buckets(self):
        with pytest.raises(ValueError, match='max_batch'):
            DynamicBatcher(BatchingPolicy(max_batch=16), {'m': (1, 2, 4)})


# ---------------------------------------------------------------------------
# registry


class TestRegistry:
    def test_bucket_ladder(self):
        assert bucket_ladder(8) == (1, 2, 4, 8)
        assert bucket_ladder(6) == (1, 2, 4, 6)
        assert bucket_ladder(1) == (1,)

    def test_register_compiles_all_buckets(self, registry):
        model = registry['tiny']
        assert model.bucket_sizes == (1, 2, 4, 8)
        for b in model.bucket_sizes:
            assert model.latency(b) > 0
        # larger buckets amortize: per-sample latency shrinks
        per_sample = [model.latency(b) / b for b in model.bucket_sizes]
        assert per_sample == sorted(per_sample, reverse=True)

    def test_requests_map_to_smallest_covering_bucket(self, registry):
        model = registry['tiny']
        assert [model.bucket_for(s) for s in range(1, 9)] \
            == [1, 2, 4, 4, 8, 8, 8, 8]

    def test_transfer_makes_ladder_cheap(self, registry):
        traffic = registry['tiny'].cache_traffic()
        assert traffic['misses'] == 4            # one exact miss per bucket
        assert traffic['transfer_hits'] == 3     # buckets 2, 4, 8 transferred

    def test_restart_with_persisted_cache_tunes_nothing(self, registry, tmp_path):
        path = str(tmp_path / 'serve_cache.json')
        registry.save_cache(path)
        restarted = ModelRegistry(cache_path=path)
        model = restarted.register('tiny', tiny_cnn, max_batch=8)
        assert model.compile_seconds == 0.0
        assert restarted.clock.events == []
        traffic = model.cache_traffic()
        assert traffic['misses'] == 0 and traffic['transfer_hits'] == 0
        # identical modeled latencies, schedule for schedule
        for b in model.bucket_sizes:
            assert model.latency(b) == registry['tiny'].latency(b)

    def test_add_bucket_warm_is_free(self, registry, tmp_path):
        path = str(tmp_path / 'serve_cache.json')
        registry.save_cache(path)
        restarted = ModelRegistry(cache_path=path)
        restarted.register('tiny', tiny_cnn, buckets=[1])
        before = restarted.clock.elapsed_seconds
        restarted.add_bucket('tiny', 2)
        assert restarted.clock.elapsed_seconds == before
        assert restarted['tiny'].bucket_sizes == (1, 2)

    def test_stale_or_corrupt_cache_file_does_not_block_boot(self, tmp_path):
        """Regression: a bad cache file must start the registry cold, not
        crash it (save() later overwrites the file)."""
        stale = tmp_path / 'stale.json'
        stale.write_text('{"version": 1, "entries": {}}')   # pre-PR-2 format
        reg = ModelRegistry(cache_path=str(stale))
        assert len(reg.cache) == 0
        corrupt = tmp_path / 'corrupt.json'
        corrupt.write_text('{not json')
        reg2 = ModelRegistry(cache_path=str(corrupt))
        assert len(reg2.cache) == 0

    def test_duplicate_and_missing_names(self, registry):
        with pytest.raises(ValueError, match='already registered'):
            registry.register('tiny', tiny_cnn)
        with pytest.raises(KeyError, match='not registered'):
            registry['nope']

    def test_cap_conflicts_with_explicit_cache(self):
        with pytest.raises(ValueError, match='not both'):
            ModelRegistry(cache=ScheduleCache(), max_cache_entries=10)

    def test_stats_shape(self, registry):
        stats = registry.stats()
        assert stats['models']['tiny']['buckets'] == [1, 2, 4, 8]
        assert 'tiny' in stats['cache_namespaces']


class TestPaddingEquivalence:
    def test_padded_batch_matches_unpadded_outputs_cnn(self, registry):
        """Dispatching one sample into a padded bucket never changes it."""
        model = registry['tiny']
        x = RNG.standard_normal((1, 4, 12, 12)).astype(np.float32)
        single = model.buckets[1].run(x)[0]
        for bucket in (2, 4, 8):
            padded = np.concatenate(
                [x, np.zeros((bucket - 1, 4, 12, 12), dtype=np.float32)])
            batched = model.buckets[bucket].run(padded)[0]
            np.testing.assert_allclose(batched[:1], single, rtol=1e-5, atol=1e-6)
            # and the graph itself agrees with the compiled artifact
            np.testing.assert_allclose(batched, tiny_cnn(bucket).run(padded)[0],
                                       rtol=1e-5, atol=1e-6)

    def test_padded_batch_matches_unpadded_outputs_bert(self):
        """Sequence stacking keeps batched sequences independent."""
        kw = dict(seq_length=8, hidden=16, layers=1, heads=2, vocab_size=50)
        ids = RNG.integers(0, 50, size=8).astype(np.int32)
        single = bert_base(**kw).run(ids)[0]
        padded = np.concatenate([ids, np.zeros(8, dtype=np.int32)])
        batched = bert_base(batch_size=2, **kw).run(padded)[0]
        np.testing.assert_allclose(batched[:8], single, rtol=1e-4, atol=1e-5)

    def test_padded_batch_matches_unpadded_outputs_gpt2(self):
        """The [seq, seq] causal mask broadcasts per sequence, not across
        the batch — padding sequences must not change the first one."""
        from repro.models import gpt2
        kw = dict(seq_length=8, hidden=16, layers=1, heads=2, vocab_size=50)
        ids = RNG.integers(0, 50, size=8).astype(np.int32)
        single = gpt2(**kw).run(ids)[0]
        other = RNG.integers(0, 50, size=8).astype(np.int32)
        batched = gpt2(batch_size=2, **kw).run(np.concatenate([ids, other]))[0]
        np.testing.assert_allclose(batched[:8], single, rtol=1e-4, atol=1e-5)
        np.testing.assert_allclose(batched[8:], gpt2(**kw).run(other)[0],
                                   rtol=1e-4, atol=1e-5)


# ---------------------------------------------------------------------------
# simulator


class TestSimulator:
    def test_conservation_and_determinism(self, registry):
        sim = ServerSimulator(registry, BatchingPolicy(max_batch=8, max_wait=1e-3))
        trace_ = poisson_trace(qps=20000, num_requests=300, models=['tiny'],
                               seed=2, sizes=(1, 2, 3))
        r1, r2 = sim.run(trace_), sim.run(trace_)
        assert sorted(c.request.req_id for c in r1.completions) == list(range(300))
        assert [(c.request.req_id, c.completion) for c in r1.completions] \
            == [(c.request.req_id, c.completion) for c in r2.completions]
        assert sum(b.size for b in r1.batches) == sum(r.size for r in trace_)

    def test_latency_at_least_service_time(self, registry):
        sim = ServerSimulator(registry, BatchingPolicy(max_batch=8, max_wait=1e-3))
        result = sim.run(poisson_trace(qps=5000, num_requests=100,
                                       models=['tiny'], seed=0))
        for c in result.completions:
            assert c.latency >= registry['tiny'].latency(c.bucket)
            assert c.queueing_delay >= 0

    def test_batch1_policy_is_one_request_per_batch(self, registry):
        sim = ServerSimulator(registry, BatchingPolicy(max_batch=1, max_wait=0.0))
        result = sim.run(poisson_trace(qps=5000, num_requests=100,
                                       models=['tiny'], seed=0))
        assert len(result.batches) == 100
        assert all(b.bucket == 1 for b in result.batches)

    def test_dynamic_batching_beats_batch1_when_saturated(self, registry):
        """The acceptance claim at subsystem level: equal offered load past
        the batch=1 capacity, higher completed throughput with batching."""
        service1 = registry['tiny'].latency(1)
        qps = 2.0 / service1                   # 2x the no-batching capacity
        trace_ = poisson_trace(qps=qps, num_requests=2000, models=['tiny'],
                               seed=4)
        dyn = ServerSimulator(registry,
                              BatchingPolicy(max_batch=8, max_wait=1e-3)).run(trace_)
        one = ServerSimulator(registry,
                              BatchingPolicy(max_batch=1, max_wait=0.0)).run(trace_)
        dyn_stats, one_stats = dyn.stats(registry), one.stats(registry)
        assert dyn_stats.throughput_rps > 1.2 * one_stats.throughput_rps
        assert dyn_stats.latency_p99_ms < one_stats.latency_p99_ms
        assert dyn_stats.mean_occupancy > 0.5
        assert one.gpu_utilization > 0.95      # batch=1 is saturated

    def test_bursty_trace_runs_to_completion(self, registry):
        sim = ServerSimulator(registry, BatchingPolicy(max_batch=8, max_wait=1e-3))
        trace_ = bursty_trace(burst_qps=50000, idle_qps=100, num_requests=400,
                              models=['tiny'], seed=5)
        result = sim.run(trace_)
        assert len(result.completions) == 400
        # bursts force large buckets
        assert any(b.bucket == 8 for b in result.batches)

    def test_stats_and_report_shape(self, registry):
        sim = ServerSimulator(registry, BatchingPolicy(max_batch=8, max_wait=1e-3))
        result = sim.run(poisson_trace(qps=30000, num_requests=500,
                                       models=['tiny'], seed=6))
        stats = result.stats(registry)
        assert stats.num_requests == 500
        assert (stats.latency_p50_ms <= stats.latency_p95_ms
                <= stats.latency_p99_ms <= stats.latency_max_ms)
        assert 0 < stats.mean_occupancy <= 1
        assert stats.cache_hit_rate > 0
        assert stats.cold_start_seconds == registry.total_compile_seconds
        assert sum(stats.bucket_histogram.values()) == stats.num_batches
        text = format_serving_report(stats, 'unit test')
        for token in ('throughput', 'p99', 'occupancy', 'hit rate', 'amortized'):
            assert token in text

    def test_hit_rate_counts_transfer_served_misses_once(self, registry):
        """Regression: a transfer-served lookup is a miss that found a
        family record — it must move into the numerator, not inflate the
        denominator as a third lookup."""
        sim = ServerSimulator(registry, BatchingPolicy(max_batch=8, max_wait=1e-3))
        stats = sim.run(poisson_trace(qps=30000, num_requests=100,
                                      models=['tiny'], seed=8)).stats(registry)
        assert stats.cache_misses == 4 and stats.cache_transfer_hits == 3
        expected = (stats.cache_hits + 3) / (stats.cache_hits + 4)
        assert stats.cache_hit_rate == pytest.approx(expected)

    def test_empty_stats_rejected(self, registry):
        sim = ServerSimulator(registry, BatchingPolicy(max_batch=8))
        result = sim.run([])
        assert result.completions == []
        with pytest.raises(ValueError, match='empty'):
            result.stats()
