"""Experiment modules: shapes of the reproduced results (fast subsets)."""
import math

import numpy as np
import pytest

from repro.experiments import (geomean, run_conv_bn_relu, run_input_sensitivity,
                               run_space_sizes)
from repro.experiments.input_sensitivity import SensitivityRow
from repro.experiments.schedule_dist import run_schedule_distribution


class TestGeomean:
    def test_basic(self):
        assert abs(geomean([1.0, 4.0]) - 2.0) < 1e-12

    def test_ignores_nonfinite(self):
        assert abs(geomean([2.0, math.inf, 2.0]) - 2.0) < 1e-12
        assert math.isnan(geomean([]))


class TestFig7:
    def test_53_layers_and_magnitudes(self):
        rows = run_space_sizes()
        per_layer = [r.autotvm_size for r in rows for _ in range(r.workload.count)]
        assert len(per_layer) == 53
        gm = geomean(per_layer)
        assert 1e6 < gm < 2e7              # paper: 3.6e6
        assert max(per_layer) > 1e7


class TestFig19:
    def test_prime_failure_and_hidet_stability(self):
        # 1031 is prime and exceeds the 1024-thread block limit, so no
        # degenerate 1-wide tile can rescue the input-centric tuners
        rows = run_input_sensitivity(sizes=(1024, 1031))
        by_size = {r.size: r for r in rows}
        assert math.isfinite(by_size[1024].autotvm_ms)
        assert not math.isfinite(by_size[1031].autotvm_ms)
        assert not math.isfinite(by_size[1031].ansor_ms)
        assert math.isfinite(by_size[1031].hidet_ms)
        ratio = by_size[1031].hidet_ms / by_size[1024].hidet_ms
        assert 0.8 < ratio < 1.3


class TestFig18:
    def test_distribution_shape(self):
        result = run_schedule_distribution()
        summary = result.summary(73.0)
        assert summary['hidet_below'] > 0.5
        assert summary['autotvm_below'] < summary['hidet_below']
        # loop-oriented samples have a heavy tail (paper: up to ~800us)
        finite = [l for l in result.autotvm_latencies_us if np.isfinite(l)]
        assert np.percentile(finite, 95) > 300


class TestFig21Subset:
    def test_hidet_wins_most_conv_bn_relu(self):
        from repro.baselines.input_space import resnet50_conv_workloads
        subset = resnet50_conv_workloads()[:6]
        rows = run_conv_bn_relu(workloads=subset)
        wins = sum(r.winner == 'hidet' for r in rows)
        assert wins >= len(rows) // 2
