"""Task-mapping semantics (paper §5.1): the core abstraction."""
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.taskmap import (ComposedTaskMapping, CustomTaskMapping,
                                RepeatTaskMapping, SpatialTaskMapping, auto_map,
                                column_repeat, column_spatial, repeat, spatial)


class TestBasicMappings:
    def test_repeat_single_worker_all_tasks(self):
        tm = repeat(2, 2)
        assert tm.num_workers == 1
        assert tm.task_shape == (2, 2)
        # Figure 11(a): row-major execution order
        assert tm(0) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_spatial_one_task_per_worker(self):
        tm = spatial(2, 2)
        assert tm.num_workers == 4
        # Figure 11(b): worker w executes (w / 2, w % 2)
        assert [tm(w)[0] for w in range(4)] == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_column_variants_order(self):
        assert column_repeat(2, 2)(0) == [(0, 0), (1, 0), (0, 1), (1, 1)]
        assert [column_spatial(2, 2)(w)[0] for w in range(4)] == \
            [(0, 0), (1, 0), (0, 1), (1, 1)]

    def test_repeat_with_ranks_matches_column_repeat(self):
        assert repeat(3, 2, ranks=[1, 0])(0) == column_repeat(3, 2)(0)

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            repeat(0, 2)
        with pytest.raises(ValueError):
            spatial(2, ranks=[1, 0])   # rank permutation mismatch


class TestComposition:
    def test_figure8_mapping(self):
        """repeat(4, 1) * spatial(16, 8): 512 tasks on 128 threads."""
        tm = repeat(4, 1) * spatial(16, 8)
        assert tm.task_shape == (64, 8)
        assert tm.num_workers == 128
        w = 9
        assert tm(w) == [(w // 8, w % 8), (w // 8 + 16, w % 8),
                         (w // 8 + 32, w % 8), (w // 8 + 48, w % 8)]

    def test_figure12a_not_commutative(self):
        a = repeat(1, 3) * spatial(2, 2)
        b = spatial(2, 2) * repeat(1, 3)
        assert a.task_shape == b.task_shape == (2, 6)
        assert a(0) != b(0)

    def test_figure12d_column_major_order(self):
        tm = repeat(1, 2) * repeat(2, 1)
        assert tm(0) == [(0, 0), (1, 0), (0, 1), (1, 1)]

    def test_paper_matmul_mapping_dimensions(self):
        """spatial(4,2)*repeat(2,2)*spatial(4,8)*repeat(4,4) from §5.1.2."""
        tm = spatial(4, 2) * repeat(2, 2) * spatial(4, 8) * repeat(4, 4)
        assert tm.task_shape == (128, 128)
        assert tm.num_workers == 256
        assert tm.tasks_per_worker == 64

    def test_composition_dimension_mismatch(self):
        with pytest.raises(ValueError):
            repeat(2) * spatial(2, 2)

    def test_associativity_concrete(self):
        f1, f2, f3 = spatial(2), repeat(3), spatial(4)
        left = (f1 * f2) * f3
        right = f1 * (f2 * f3)
        assert left.task_shape == right.task_shape
        assert left.num_workers == right.num_workers
        for w in range(left.num_workers):
            assert left(w) == right(w)


def _coverage(tm):
    """task -> number of times executed across all workers."""
    counts = {}
    for w in range(tm.num_workers):
        for task in tm.worker2task(w):
            counts[task] = counts.get(task, 0) + 1
    return counts


@st.composite
def _atom(draw, dims):
    shape = tuple(draw(st.integers(1, 3)) for _ in range(dims))
    kind = draw(st.sampled_from(['repeat', 'spatial']))
    return repeat(*shape) if kind == 'repeat' else spatial(*shape)


@st.composite
def small_mappings(draw, max_dims=2):
    """Random compositions of repeat/spatial with bounded size."""
    num_atoms = draw(st.integers(1, 3))
    dims = draw(st.integers(1, max_dims))
    tm = draw(_atom(dims))
    for _ in range(num_atoms - 1):
        tm = tm * draw(_atom(dims))
    return tm


@st.composite
def mapping_triples(draw, max_dims=2):
    """Three atoms of equal dimensionality (for composition laws)."""
    dims = draw(st.integers(1, max_dims))
    return tuple(draw(_atom(dims)) for _ in range(3))


class TestProperties:
    @given(small_mappings())
    @settings(max_examples=60, deadline=None)
    def test_every_task_executed_exactly_once(self, tm):
        """repeat/spatial compositions partition the task domain."""
        counts = _coverage(tm)
        assert len(counts) == tm.num_tasks
        assert all(c == 1 for c in counts.values())

    @given(small_mappings())
    @settings(max_examples=60, deadline=None)
    def test_balanced_workers(self, tm):
        sizes = {len(tm.worker2task(w)) for w in range(tm.num_workers)}
        assert sizes == {tm.tasks_per_worker}

    @given(mapping_triples())
    @settings(max_examples=30, deadline=None)
    def test_associativity(self, triple):
        f1, f2, f3 = triple
        left = (f1 * f2) * f3
        right = f1 * (f2 * f3)
        for w in range(left.num_workers):
            assert left(w) == right(w)


class TestAutoMap:
    def test_figure8_auto_map(self):
        tm = auto_map(64, 8, workers=128)
        assert isinstance(tm, ComposedTaskMapping)
        assert tm.outer.task_shape == (4, 1)
        assert tm.inner.task_shape == (16, 8)

    def test_auto_map_covers_domain(self):
        tm = auto_map(32, 16, workers=64)
        counts = _coverage(tm)
        assert len(counts) == 512 and all(c == 1 for c in counts.values())

    def test_auto_map_rejects_uneven(self):
        with pytest.raises(ValueError):
            auto_map(7, 3, workers=4)


class TestCustomMapping:
    def test_custom_polymorphic_function(self):
        tm = CustomTaskMapping((4,), 2, lambda w: [(w * 2,), (w * 2 + 1,)])
        assert tm(0) == [(0,), (1,)]
        assert tm(1) == [(2,), (3,)]
        counts = _coverage(tm)
        assert all(c == 1 for c in counts.values())

    def test_custom_composes(self):
        tm = CustomTaskMapping((2,), 2, lambda w: [(w,)]) * repeat(3)
        assert tm.task_shape == (6,)
        assert tm(1) == [(3,), (4,), (5,)]
