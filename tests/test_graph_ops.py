"""Operator zoo: numpy semantics, shape inference, fusion classification."""
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import Tensor, from_numpy, ops, symbol, trace

RNG = np.random.default_rng(42)


def _sym(shape):
    return symbol(shape), RNG.standard_normal(shape).astype(np.float32)


def _check(out_tensor, inputs_np, reference):
    graph = trace(out_tensor)
    got = graph.run(*inputs_np)[0]
    np.testing.assert_allclose(got, reference, rtol=1e-4, atol=1e-5)
    return graph


class TestArithmetic:
    def test_binary_same_shape(self):
        x, xv = _sym([3, 4])
        y, yv = _sym([3, 4])
        _check(ops.add(x, y), [xv, yv], xv + yv)
        _check(ops.sub(x, y), [xv, yv], xv - yv)
        _check(ops.mul(x, y), [xv, yv], xv * yv)

    def test_broadcasting(self):
        x, xv = _sym([2, 3, 4])
        bias = from_numpy(RNG.standard_normal((4,)).astype(np.float32))
        _check(ops.add(x, bias), [xv], xv + bias.numpy())
        nchw, nchw_v = _sym([2, 3, 4, 4])
        chan = from_numpy(RNG.standard_normal((3, 1, 1)).astype(np.float32))
        _check(ops.mul(nchw, chan), [nchw_v], nchw_v * chan.numpy())

    def test_broadcast_shape_error(self):
        with pytest.raises(ValueError):
            ops.add(symbol([3, 4]), symbol([5, 4]))

    def test_bijectivity_per_input(self):
        x = symbol([3, 4])
        bias = from_numpy(np.zeros((4,), dtype=np.float32))
        op = ops.add(x, bias).producer
        task = op.task
        assert task.inputs[0] in task.inverse_maps       # full-shape input
        assert task.inputs[1] not in task.inverse_maps   # broadcast input

    @pytest.mark.parametrize('fn,ref', [
        (ops.relu, lambda a: np.maximum(a, 0)),
        (ops.relu6, lambda a: np.clip(a, 0, 6)),
        (ops.exp, np.exp),
        (ops.tanh, np.tanh),
        (ops.sigmoid, lambda a: 1 / (1 + np.exp(-a))),
        (ops.negate, np.negative),
    ])
    def test_unary(self, fn, ref):
        x, xv = _sym([5, 6])
        _check(fn(x), [xv], ref(xv))

    def test_gelu_matches_erf_formula(self):
        from scipy.special import erf
        x, xv = _sym([64])
        _check(ops.gelu(x), [xv], 0.5 * xv * (1 + erf(xv / np.sqrt(2))))

    def test_operator_sugar(self):
        x, xv = _sym([4])
        y, yv = _sym([4])
        _check(x + y, [xv, yv], xv + yv)
        _check(x * 2.0, [xv], xv * 2.0)


class TestMatmulOps:
    def test_matmul(self):
        a, av = _sym([5, 7])
        b, bv = _sym([7, 3])
        _check(ops.matmul(a, b), [av, bv], av @ bv)

    def test_batch_matmul(self):
        a, av = _sym([2, 5, 7])
        b, bv = _sym([2, 7, 3])
        _check(ops.batch_matmul(a, b), [av, bv], av @ bv)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            ops.matmul(symbol([4, 5]), symbol([6, 7]))

    def test_anchor_priority(self):
        a = ops.matmul(symbol([4, 4]), symbol([4, 4])).producer
        assert a.anchor_priority > 0 and not a.is_injective


class TestTransforms:
    def test_reshape_and_infer_minus_one(self):
        x, xv = _sym([4, 6])
        _check(ops.reshape(x, [2, -1]), [xv], xv.reshape(2, 12))
        with pytest.raises(ValueError):
            ops.reshape(x, [5, 5])

    def test_transpose(self):
        x, xv = _sym([2, 3, 4])
        _check(ops.transpose(x, [2, 0, 1]), [xv], xv.transpose(2, 0, 1))
        with pytest.raises(ValueError):
            ops.transpose(x, [0, 0, 1])

    def test_concat(self):
        x, xv = _sym([2, 3])
        y, yv = _sym([2, 5])
        _check(ops.concat([x, y], axis=1), [xv, yv], np.concatenate([xv, yv], 1))

    def test_pad(self):
        x, xv = _sym([1, 2, 4, 4])
        _check(ops.pad(x, (1, 2)), [xv],
               np.pad(xv, [(0, 0), (0, 0), (1, 1), (2, 2)]))

    def test_flatten(self):
        x, xv = _sym([2, 3, 4])
        _check(ops.flatten(x), [xv], xv.reshape(2, 12))

    def test_transforms_are_bijective(self):
        x = symbol([4, 6])
        assert ops.reshape(x, [24]).producer.is_bijective
        assert ops.transpose(x, [1, 0]).producer.is_bijective


class TestConvAndPool:
    @pytest.mark.parametrize('stride,padding', [(1, 0), (1, 1), (2, 1)])
    def test_conv2d_against_direct_sum(self, stride, padding):
        x, xv = _sym([2, 3, 8, 8])
        w = from_numpy(RNG.standard_normal((4, 3, 3, 3)).astype(np.float32) * 0.2)
        graph = trace(ops.conv2d(x, w, stride=stride, padding=padding))
        got = graph.run(xv)[0]
        # brute-force reference
        ph = padding
        padded = np.pad(xv, [(0, 0), (0, 0), (ph, ph), (ph, ph)])
        n, _, oh, ow = got.shape
        ref = np.zeros_like(got)
        for i in range(oh):
            for j in range(ow):
                patch = padded[:, :, i * stride:i * stride + 3, j * stride:j * stride + 3]
                ref[:, :, i, j] = np.einsum('ncij,ocij->no', patch, w.numpy())
        np.testing.assert_allclose(got, ref, rtol=1e-4, atol=1e-4)

    def test_depthwise_conv(self):
        x, xv = _sym([1, 4, 6, 6])
        w = from_numpy(RNG.standard_normal((4, 1, 3, 3)).astype(np.float32))
        op = ops.conv2d(x, w, stride=1, padding=1, groups=4).producer
        assert op.is_depthwise
        got = trace(op.output).run(xv)[0]
        for c in range(4):
            single = np.pad(xv[0, c], 1)
            ref = np.zeros((6, 6), dtype=np.float32)
            for i in range(6):
                for j in range(6):
                    ref[i, j] = (single[i:i + 3, j:j + 3] * w.numpy()[c, 0]).sum()
            np.testing.assert_allclose(got[0, c], ref, rtol=1e-4, atol=1e-4)

    def test_rectangular_kernel(self):
        x, xv = _sym([1, 2, 6, 6])
        w = from_numpy(RNG.standard_normal((3, 2, 1, 7)).astype(np.float32))
        out = ops.conv2d(x, w, stride=1, padding=(0, 3))
        assert out.shape == (1, 3, 6, 6)
        trace(out).run(xv)   # must execute

    def test_img2col_matches_manual(self):
        from repro.graph.ops.conv import Im2colOp
        x, xv = _sym([1, 2, 5, 5])
        op = Im2colOp(x, (3, 3), 1, 1, (5, 5))
        got = trace(op.output).run(xv)[0]
        assert got.shape == (25, 18)

    def test_pools(self):
        x, xv = _sym([1, 2, 8, 8])
        _check(ops.max_pool2d(x, 2, 2), [xv],
               xv.reshape(1, 2, 4, 2, 4, 2).max(axis=(3, 5)))
        _check(ops.global_avg_pool(x), [xv], xv.mean(axis=(2, 3)))

    def test_conv_not_injective(self):
        x = symbol([1, 2, 4, 4])
        w = from_numpy(np.zeros((2, 2, 3, 3), dtype=np.float32))
        assert not ops.conv2d(x, w, padding=1).producer.is_injective


class TestReduceNormsEmbedding:
    def test_reduce_ops(self):
        x, xv = _sym([4, 9])
        _check(ops.reduce_sum(x), [xv], xv.sum(-1, keepdims=True))
        _check(ops.reduce_max(x, keepdims=False), [xv], xv.max(-1))
        _check(ops.reduce_mean(x), [xv], xv.mean(-1, keepdims=True))

    def test_softmax(self):
        x, xv = _sym([5, 11])
        e = np.exp(xv - xv.max(-1, keepdims=True))
        _check(ops.softmax(x), [xv], e / e.sum(-1, keepdims=True))

    def test_layer_norm(self):
        x, xv = _sym([6, 16])
        gamma = from_numpy(np.ones(16, dtype=np.float32))
        beta = from_numpy(np.zeros(16, dtype=np.float32))
        mean = xv.mean(-1, keepdims=True)
        var = ((xv - mean) ** 2).mean(-1, keepdims=True)
        _check(ops.layer_norm(x, gamma, beta), [xv],
               (xv - mean) / np.sqrt(var + 1e-5))

    def test_batch_norm_folding(self):
        from repro.graph.ops.norms import batch_norm_inference_params
        w = np.abs(RNG.standard_normal(4).astype(np.float32)) + 0.5
        b = RNG.standard_normal(4).astype(np.float32)
        mean = RNG.standard_normal(4).astype(np.float32)
        var = np.abs(RNG.standard_normal(4).astype(np.float32)) + 0.5
        scale, shift = batch_norm_inference_params(w, b, mean, var)
        x, xv = _sym([1, 4, 3, 3])
        out = ops.batch_norm(x, from_numpy(scale.reshape(4, 1, 1)),
                             from_numpy(shift.reshape(4, 1, 1)))
        ref = (xv - mean.reshape(4, 1, 1)) / np.sqrt(var.reshape(4, 1, 1) + 1e-5) \
            * w.reshape(4, 1, 1) + b.reshape(4, 1, 1)
        _check(out, [xv], ref)

    def test_embedding(self):
        table = from_numpy(RNG.standard_normal((10, 4)).astype(np.float32))
        ids = symbol([6], dtype='int32')
        ids_np = RNG.integers(0, 10, size=6).astype(np.int32)
        _check(ops.embedding(table, ids), [ids_np], table.numpy()[ids_np])
        assert ops.embedding(table, ids).producer.is_injective
