"""The observability spine (repro.obs): span lifecycle invariants, the
metrics registry, Chrome trace export, the BENCH_* trajectory format, and
the ``python -m repro.obs.compare`` regression gate — plus reconciliation
of the span ledger against the serving stats fold.
"""
import json
import math

import numpy as np
import pytest

from repro.graph import ops, symbol, trace
from repro.gpusim.device import RTX3090
from repro.models.common import WeightFactory, conv_bn_relu, linear
from repro.obs import (LIFECYCLE_TRACK, TERMINAL_KINDS, BenchMetric,
                       BenchResult, Counter, Gauge, Histogram, Measurement,
                       MetricsRegistry, Telemetry, Tracer, compare,
                       percentile, percentiles, summarize_latencies)
from repro.obs.compare import main as compare_main
from repro.serve import (BatchingPolicy, FailureEvent, Fleet, FleetSimulator,
                         LeastLoadedPlacement, ModelRegistry, Request,
                         ServerSimulator, poisson_trace)


def tiny_cnn(batch: int):
    x = symbol([batch, 4, 12, 12], name='x')
    wf = WeightFactory(5)
    y = conv_bn_relu(wf, x, 8, kernel=3, padding=1, name='c1')
    return trace(ops.global_avg_pool(y), name=f'cnn_b{batch}')


def tiny_mlp(batch: int):
    x = symbol([batch, 32], name='x')
    wf = WeightFactory(9)
    y = ops.relu(linear(wf, x, 64, name='fc1'))
    return trace(linear(wf, y, 8, name='fc2'), name=f'mlp_b{batch}')


# ---------------------------------------------------------------------------
# percentiles: the one shared implementation


class TestPercentiles:
    def test_matches_numpy(self):
        values = [3.0, 1.0, 4.0, 1.5, 9.0, 2.6]
        for q in (0, 25, 50, 90, 99, 100):
            assert percentile(values, q) == pytest.approx(
                float(np.percentile(values, q)))

    def test_empty_is_nan_not_crash(self):
        assert math.isnan(percentile([], 99))
        summary = summarize_latencies([])
        assert all(math.isnan(v) for v in summary.values())

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_percentiles_plural(self):
        p50, p99 = percentiles([1.0, 2.0, 3.0], (50, 99))
        assert p50 == pytest.approx(2.0)
        assert p99 > p50


# ---------------------------------------------------------------------------
# metrics registry


class TestMetrics:
    def test_counter_rejects_negative(self):
        c = Counter('n')
        c.add(2)
        c.add()
        assert c.value == 3
        with pytest.raises(ValueError):
            c.add(-1)

    def test_gauge_series_over_sim_time(self):
        g = Gauge('depth')
        g.set(0.0, 1.0)
        g.set(0.5, 4.0)
        g.set(1.0, 2.0)
        assert g.last == 2.0 and g.max() == 4.0 and g.num_samples == 3

    def test_histogram_measurement_round_trip(self):
        h = Histogram('lat', unit='ms')
        h.observe_many([1.0, 2.0, 3.0, 4.0])
        m = h.measurement()
        assert isinstance(m, Measurement)
        assert m.mean_ms == pytest.approx(2.5)
        assert m.repeats == 4

    def test_registry_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter('x').add()
        with pytest.raises(TypeError, match='x'):
            reg.gauge('x')

    def test_merge_keeps_existing_names(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter('shared').add(1)
        b.counter('shared').add(10)
        b.counter('only_b').add(5)
        a.merge(b)
        assert a.counter('shared').value == 1      # existing name wins
        assert a.counter('only_b').value == 5

    def test_profiler_benchmark_flows_through_histogram(self):
        """Satellite: compile-time measurement and serve-time latency share
        one histogram type."""
        from repro.runtime import HidetExecutor
        from repro.runtime.profiler import benchmark
        compiled = HidetExecutor().compile(tiny_cnn(1))
        exact = benchmark(compiled)
        assert exact.std_ms == 0.0
        noisy = benchmark(compiled, repeats=20, noise=0.05, seed=1)
        assert noisy.repeats == 20
        assert noisy.std_ms > 0.0
        assert noisy.mean_ms == pytest.approx(exact.mean_ms, rel=0.2)


# ---------------------------------------------------------------------------
# span lifecycle invariants


class TestSpanLifecycle:
    def test_every_arrival_terminates_exactly_once(self):
        tracer = Tracer()
        req = Request(0, 'm', 1, 0.0)
        tracer.arrival(req, 0.0)
        assert tracer.terminal_counts()['open'] == 1
        tracer.reject(req, 0.1)
        counts = tracer.terminal_counts()
        assert counts == {'complete': 0, 'reject': 1, 'lost': 0, 'open': 0}
        tracer.assert_invariants()

    def test_double_termination_is_a_violation(self):
        tracer = Tracer()
        req = Request(0, 'm', 1, 0.0)
        tracer.arrival(req, 0.0)
        tracer.reject(req, 0.1)
        tracer.reject(req, 0.2)
        assert any('twice' in v for v in tracer.check_invariants())
        with pytest.raises(AssertionError):
            tracer.assert_invariants()

    def test_orphan_termination_is_a_violation(self):
        tracer = Tracer()
        tracer.lost(Request(7, 'm', 1, 0.0), 1.0)
        assert tracer.check_invariants()

    def test_duplicate_arrival_is_a_violation(self):
        tracer = Tracer()
        tracer.arrival(Request(0, 'm', 1, 0.0), 0.0)
        tracer.arrival(Request(0, 'm', 1, 0.5), 0.5)
        assert any('duplicate' in v for v in tracer.check_invariants())

    def test_terminal_kinds_cover_the_ledger(self):
        assert set(TERMINAL_KINDS) == {'complete', 'reject', 'lost'}


# ---------------------------------------------------------------------------
# telemetry ↔ stats reconciliation


@pytest.fixture(scope='module')
def sim_run():
    """One single-replica run with telemetry, shared across the tests."""
    registry = ModelRegistry()
    registry.register('tiny', tiny_cnn, max_batch=4)
    sim = ServerSimulator(registry, BatchingPolicy(max_batch=4, max_wait=1e-3))
    trace_ = poisson_trace(3000, 300, ['tiny'], seed=11)
    telemetry = Telemetry()
    result = sim.run(trace_, telemetry=telemetry)
    stats = result.stats(registry, telemetry=telemetry)
    return trace_, telemetry, stats


class TestReconciliation:
    def test_span_totals_match_stats(self, sim_run):
        trace_, telemetry, stats = sim_run
        telemetry.tracer.assert_invariants()
        counts = telemetry.tracer.terminal_counts()
        assert counts['open'] == 0
        assert counts['complete'] == stats.num_requests
        assert counts['reject'] == stats.num_rejected
        assert counts['lost'] == stats.num_lost_to_failure
        assert sum(counts[k] for k in TERMINAL_KINDS) == len(trace_)

    def test_live_metrics_agree_with_fold(self, sim_run):
        _, telemetry, stats = sim_run
        live = telemetry.metrics
        assert live.counter('sim.requests.completed').value == stats.num_requests
        lat = live.histogram('sim.request.latency_ms')
        assert lat.percentile(99) == pytest.approx(stats.latency_p99_ms)
        assert lat.mean() == pytest.approx(stats.latency_mean_ms)

    def test_stats_carry_the_merged_registry(self, sim_run):
        _, _, stats = sim_run
        assert stats.metrics is not None
        assert ('serve.requests.completed' in stats.metrics
                and 'sim.requests.completed' in stats.metrics)
        assert (stats.metrics.counter('serve.requests.completed').value
                == stats.num_requests)

    def test_sim_time_ordering_within_spans(self, sim_run):
        _, telemetry, _ = sim_run
        for span in telemetry.tracer.request_spans:
            if span.dispatch_time is not None:
                assert span.arrival <= span.dispatch_time
                assert span.dispatch_time <= span.terminal_time
            if span.terminal == 'complete':
                assert span.replica is not None and span.bucket is not None


# ---------------------------------------------------------------------------
# decode: the reconciliation extends to token granularity


class TestTokenReconciliation:
    @pytest.fixture(scope='class')
    def decode_run(self):
        """One continuous-batching decode run with telemetry."""
        from repro.gpusim import DecodeCostModel
        from repro.serve import DecodePolicy, DecodeSimulator, decode_trace
        cost = DecodeCostModel(device=RTX3090, seq_length=16,
                               bucket_latency={1: 1e-4, 4: 1.6e-4},
                               weights_bytes=1_000_000)
        trace_ = decode_trace(qps=3000, num_requests=150, seed=2,
                              prompt_tokens=(2, 8), mean_output_tokens=6.0,
                              max_output_tokens=24)
        telemetry = Telemetry()
        sim = DecodeSimulator(cost, DecodePolicy(max_width=4, max_tokens=24))
        result = sim.run(trace_, telemetry=telemetry)
        return telemetry, result.stats(telemetry=telemetry)

    def test_span_tokens_match_stats(self, decode_run):
        telemetry, stats = decode_run
        telemetry.tracer.assert_invariants()
        tokens = telemetry.tracer.token_counts()
        assert tokens['open'] == 0 and tokens['reject'] == 0
        # every generated token is attributed to exactly one terminal span
        assert tokens['complete'] + tokens['lost'] == stats.num_decode_tokens
        assert stats.tokens_per_second > 0

    def test_live_token_counter_agrees_with_fold(self, decode_run):
        telemetry, stats = decode_run
        live = telemetry.metrics
        assert (live.counter('sim.tokens.generated').value
                == stats.num_decode_tokens)
        assert (live.counter('sim.decode.steps').value
                == stats.num_decode_steps)

    def test_chrome_export_carries_token_args(self, decode_run):
        telemetry, stats = decode_run
        doc = telemetry.chrome_trace()
        ends = [e for e in doc['traceEvents'] if e['ph'] == 'e']
        assert (sum(e['args'].get('tokens_out', 0) for e in ends)
                == stats.num_decode_tokens)


# ---------------------------------------------------------------------------
# fleet: failures show up as spans, the ledger still balances


class TestFleetTelemetry:
    def test_kill_revive_run_reconciles_and_traces(self):
        fleet = Fleet([RTX3090, RTX3090], placement=LeastLoadedPlacement())
        fleet.register('cnn', tiny_cnn, max_batch=4)
        fleet.register('mlp', tiny_mlp, max_batch=4)
        trace_ = poisson_trace(6000, 400, ['cnn', 'mlp'], seed=3)
        kill_at = trace_[len(trace_) // 4].arrival
        sim = FleetSimulator(
            fleet, BatchingPolicy(max_batch=4, max_wait=1e-3),
            failures=[FailureEvent(time=kill_at, replica=0,
                                   revive_at=kill_at + 0.05)])
        telemetry = Telemetry()
        result = sim.run(trace_, telemetry=telemetry)
        stats = result.stats(telemetry=telemetry)

        telemetry.tracer.assert_invariants()
        counts = telemetry.tracer.terminal_counts()
        assert counts['open'] == 0
        assert counts['complete'] == stats.num_requests
        assert counts['reject'] == stats.num_rejected
        assert counts['lost'] == stats.num_lost_to_failure
        assert sum(counts[k] for k in TERMINAL_KINDS) == len(trace_)

        # the lifecycle shows up on the instant track
        instants = {i.name for i in telemetry.tracer.instants}
        assert 'lifecycle:kill' in instants
        assert 'lifecycle:revive' in instants
        # failure-caused losses carry a failure reason, not a generic one
        lost = [s for s in telemetry.tracer.request_spans
                if s.terminal == 'lost']
        assert all(s.reason.startswith('failure') for s in lost)

    def test_gauges_track_fleet_shape(self):
        fleet = Fleet([RTX3090, RTX3090], placement=LeastLoadedPlacement())
        fleet.register('cnn', tiny_cnn, max_batch=4)
        trace_ = poisson_trace(3000, 200, ['cnn'], seed=5)
        kill_at = trace_[len(trace_) // 2].arrival
        sim = FleetSimulator(
            fleet, BatchingPolicy(max_batch=4, max_wait=1e-3),
            failures=[FailureEvent(time=kill_at, replica=1)])
        telemetry = Telemetry()
        sim.run(trace_, telemetry=telemetry)
        serving = telemetry.metrics.gauge('sim.replicas.serving')
        values = [v for _, v in serving.series()]
        assert 2.0 in values and 1.0 in values     # the kill is visible


# ---------------------------------------------------------------------------
# Chrome trace export


class TestChromeTrace:
    def test_export_is_valid_and_balanced(self, sim_run, tmp_path):
        _, telemetry, stats = sim_run
        path = tmp_path / 'trace.json'
        telemetry.write_chrome_trace(str(path))
        doc = json.loads(path.read_text())
        events = doc['traceEvents']
        assert events, 'empty trace'
        for ev in events:
            assert ev['ph'] in ('b', 'e', 'X', 'i', 'C', 'M')
            if ev['ph'] != 'M':
                assert ev['ts'] >= 0

        begins = [e for e in events if e['ph'] == 'b']
        ends = [e for e in events if e['ph'] == 'e']
        # one terminal span per admitted request, b/e ids match 1:1
        assert len(begins) == len(ends)
        assert {e['id'] for e in begins} == {e['id'] for e in ends}
        terminals = [e['args']['terminal'] for e in ends]
        assert terminals.count('complete') == stats.num_requests

        # batch execution intervals are X events with positive duration
        batches = [e for e in events if e['ph'] == 'X']
        assert len(batches) == stats.num_batches
        assert all(e['dur'] > 0 for e in batches)

        # gauge series export as counter events for Perfetto step charts
        assert any(e['ph'] == 'C' for e in events)

    def test_sim_seconds_become_microseconds(self, sim_run):
        _, telemetry, _ = sim_run
        doc = telemetry.chrome_trace()
        by_id = {s.req_id: s for s in telemetry.tracer.request_spans}
        begin = next(e for e in doc['traceEvents'] if e['ph'] == 'b')
        assert begin['ts'] == pytest.approx(by_id[begin['id']].arrival * 1e6)


# ---------------------------------------------------------------------------
# bench format + the compare gate


def _result(area='serving', **values):
    res = BenchResult(area=area, mode='smoke')
    for name, value in values.items():
        res.add(name, value)
    return res


class TestBenchFormat:
    def test_write_is_byte_stable(self, tmp_path):
        res = _result(p99_ms=3.25, p50_ms=1.5)
        a, b = tmp_path / 'a.json', tmp_path / 'b.json'
        res.write(str(a))
        BenchResult.load(str(a)).write(str(b))
        assert a.read_bytes() == b.read_bytes()

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / 'v.json'
        doc = _result(x=1.0).to_dict()
        doc['format_version'] = 99
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match='format_version'):
            BenchResult.load(str(path))

    def test_direction_validated(self):
        with pytest.raises(ValueError):
            BenchMetric(value=1.0, direction='sideways')


class TestCompareGate:
    def test_identical_passes(self):
        base = _result(p99_ms=3.0)
        assert compare(base, base).ok

    def test_injected_latency_regression_fails_named(self, tmp_path, capsys):
        """The acceptance criterion: a >=10% latency bump must gate."""
        base = _result(latency_p99_ms=3.0)
        cand = _result(latency_p99_ms=3.0 * 1.12)       # +12% > 10% band
        cmp_ = compare(base, cand)
        assert not cmp_.ok
        assert [d.name for d in cmp_.regressions] == ['latency_p99_ms']

        # and through the CLI: exit code 1, metric named on stdout
        base_path, cand_path = tmp_path / 'b.json', tmp_path / 'c.json'
        base.write(str(base_path))
        cand.write(str(cand_path))
        assert compare_main([str(base_path), str(cand_path)]) == 1
        assert 'latency_p99_ms' in capsys.readouterr().out

    def test_within_noise_band_passes(self):
        base = _result(latency_p99_ms=3.0)
        cand = _result(latency_p99_ms=3.0 * 1.05)       # +5% < 10% band
        assert compare(base, cand).ok

    def test_higher_is_better_mirrors(self):
        base = BenchResult(area='a')
        base.add('throughput', 100.0, direction='higher')
        worse = BenchResult(area='a')
        worse.add('throughput', 80.0, direction='higher')
        assert not compare(base, worse).ok
        better = BenchResult(area='a')
        better.add('throughput', 130.0, direction='higher')
        cmp_ = compare(base, better)
        assert cmp_.ok
        assert cmp_.deltas[0].status == 'improved'

    def test_zero_baseline_is_strict(self):
        """warm_*_seconds baselines are 0: any adverse move gates."""
        base = _result(warm_seconds=0.0)
        cand = _result(warm_seconds=0.001)
        assert not compare(base, cand).ok

    def test_info_metrics_never_gate(self):
        base = BenchResult(area='a')
        base.add('wall_seconds', 5.0, direction='info')
        cand = BenchResult(area='a')
        cand.add('wall_seconds', 50.0, direction='info')
        assert compare(base, cand).ok

    def test_missing_gated_metric_is_a_regression(self):
        base = _result(p99_ms=3.0, p50_ms=1.0)
        cand = _result(p99_ms=3.0)
        cmp_ = compare(base, cand)
        assert not cmp_.ok
        assert cmp_.regressions[0].name == 'p50_ms'

    def test_nan_candidate_is_a_regression(self):
        base = _result(p99_ms=3.0)
        cand = _result(p99_ms=float('nan'))
        assert not compare(base, cand).ok

    def test_area_mismatch_is_exit_2(self, tmp_path):
        a, b = tmp_path / 'a.json', tmp_path / 'b.json'
        _result(area='serving', x=1.0).write(str(a))
        _result(area='tuning', x=1.0).write(str(b))
        assert compare_main([str(a), str(b)]) == 2

    def test_unreadable_file_is_exit_2(self, tmp_path):
        a = tmp_path / 'a.json'
        _result(x=1.0).write(str(a))
        assert compare_main([str(a), str(tmp_path / 'missing.json')]) == 2


# ---------------------------------------------------------------------------
# committed baselines: the gate must hold on an unchanged tree


class TestCommittedBaselines:
    @pytest.mark.parametrize('name', ['BENCH_serving.json', 'BENCH_tuning.json'])
    def test_baseline_loads(self, name):
        import pathlib
        path = pathlib.Path(__file__).resolve().parent.parent / name
        assert path.is_file(), f'{name} baseline missing from repo root'
        res = BenchResult.load(str(path))
        assert res.names()
        assert compare(res, res).ok
