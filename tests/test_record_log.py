"""Property-based tests for the schedule cache's append-only record log.

The log replaces the PR-1-era merge-on-save JSON format, whose
read-modify-write cycle let concurrent savers drop each other's entries.
The properties below are what the parallel tuning service leans on:

- *any* interleaving of N writers' ``save`` / ``compact_log`` / ``load``
  operations round-trips to the same final entry set (the union of what
  the writers held);
- ``merge_json`` is commutative and idempotent over value-consistent
  caches (in this system, two tuners that tune the same problem compute
  the same optimum — determinism is what makes the merge a semilattice);
- compaction is canonical: logs reaching the same effective state compact
  to byte-identical files, and compacting twice is a no-op;
- a legacy monolithic-JSON cache file migrates into log form on the first
  ``save``/``compact_log`` without losing records.
"""
import json
import os

from hypothesis import given, settings, strategies as st

from repro.core.space import matmul_schedule_space
from repro.gpusim.device import RTX3090
from repro.runtime.cache import (CACHE_FORMAT_VERSION, MeasurementRecord,
                                 ScheduleCache, compact_log)

#: small deterministic pool of real schedules to draw entry values from
SCHEDULES = list(matmul_schedule_space(RTX3090))[:8]

#: global signature -> value assignment: every writer that holds signature
#: ``sig_i`` holds the *same* entry for it (value-consistent writers), which
#: is the regime the tuning service runs in — a deterministic tuner cannot
#: produce two different optima for one problem
SIGNATURES = [f'sig_{i:02d}' for i in range(12)]


def _put(cache: ScheduleCache, index: int) -> None:
    cache.put(SIGNATURES[index], 'matmul', SCHEDULES[index % len(SCHEDULES)],
              namespace=f'ns{index % 3}')


def _measure(cache: ScheduleCache, index: int) -> None:
    cache.record_measurement(MeasurementRecord(
        kind='matmul', m=64 * (index + 1), n=128, k=256, batch=1,
        schedule=SCHEDULES[index % len(SCHEDULES)],
        latency=1e-5 * (index + 1)))


def _writer(indices) -> ScheduleCache:
    cache = ScheduleCache()
    for index in indices:
        _put(cache, index)
        _measure(cache, index)
    return cache


# one writer's holdings: which of the global signatures it tuned
writer_strategy = st.lists(st.integers(min_value=0,
                                       max_value=len(SIGNATURES) - 1),
                           min_size=0, max_size=6)


@settings(max_examples=30, deadline=None)
@given(writers=st.lists(writer_strategy, min_size=1, max_size=4),
       order=st.permutations(range(4)),
       compact_after=st.sets(st.integers(min_value=0, max_value=3)))
def test_interleaved_writers_round_trip_to_the_union(tmp_path_factory,
                                                     writers, order,
                                                     compact_after):
    """Any save order, with compactions and loads interleaved anywhere,
    yields the union of every writer's records."""
    path = str(tmp_path_factory.mktemp('log') / 'schedules.jsonl')
    caches = [_writer(indices) for indices in writers]
    expected_sigs = {SIGNATURES[i] for indices in writers for i in indices}
    expected_measurements = len({64 * (i + 1) for indices in writers
                                 for i in indices})
    for step, writer_index in enumerate(i for i in order
                                        if i < len(caches)):
        caches[writer_index].save(path)
        if step in compact_after:
            compact_log(path)
        # a reader racing the writers sees a consistent prefix: every
        # record saved so far replays cleanly
        ScheduleCache().warm(path)
    final = ScheduleCache.load(path)
    assert {sig for sig in SIGNATURES if sig in final} == expected_sigs
    assert len(final) == len(expected_sigs)
    assert final.measurement_count == expected_measurements
    for indices in writers:
        for i in indices:
            assert final.get(SIGNATURES[i], 'matmul') == \
                SCHEDULES[i % len(SCHEDULES)]


@settings(max_examples=30, deadline=None)
@given(a=writer_strategy, b=writer_strategy)
def test_merge_is_commutative_and_idempotent(a, b):
    ab = _writer(a)
    ab.merge_json(_writer(b).to_json())
    ba = _writer(b)
    ba.merge_json(_writer(a).to_json())
    assert ab.to_json() == ba.to_json()            # commutative
    twice = _writer(a)
    twice.merge_json(_writer(a).to_json())
    assert twice.to_json() == _writer(a).to_json()  # idempotent
    again = ScheduleCache()
    again.merge_json(ab.to_json())
    again.merge_json(ab.to_json())
    assert again.to_json() == ab.to_json()


@settings(max_examples=20, deadline=None)
@given(indices=writer_strategy.filter(lambda xs: len(xs) > 0),
       split=st.integers(min_value=0, max_value=6),
       order=st.booleans())
def test_compaction_is_canonical_and_idempotent(tmp_path_factory, indices,
                                                split, order):
    """Two logs reaching the same state — in different record orders, with
    different append histories — compact to byte-identical files."""
    tmp = tmp_path_factory.mktemp('log')
    split = min(split, len(indices))
    first, second = indices[:split], indices[split:]
    path_a, path_b = str(tmp / 'a.jsonl'), str(tmp / 'b.jsonl')
    _writer(first).save(path_a)
    _writer(second).save(path_a)
    if order:
        _writer(second).save(path_b)
        _writer(first).save(path_b)
    else:
        _writer(indices).save(path_b)
    compact_log(path_a)
    compact_log(path_b)
    with open(path_a, 'rb') as fa, open(path_b, 'rb') as fb:
        bytes_a, bytes_b = fa.read(), fb.read()
    assert bytes_a == bytes_b
    compact_log(path_a)                 # compaction is idempotent
    with open(path_a, 'rb') as fa:
        assert fa.read() == bytes_a


def test_torn_trailing_line_is_ignored(tmp_path):
    """A reader racing an in-flight append sees every *completed* record."""
    path = str(tmp_path / 'schedules.jsonl')
    _writer([0, 1, 2]).save(path)
    with open(path, 'a', encoding='utf-8') as f:
        f.write('{"op": "put", "sig": "sig_99", "entry": {"kin')  # torn
    warmed = ScheduleCache.load(path)
    assert len(warmed) == 3
    assert 'sig_99' not in warmed


def test_legacy_json_cache_migrates_into_log_form(tmp_path):
    """A monolithic-JSON cache file (the pre-log format) is readable, and
    the first save/compact rewrites it as a record log without loss."""
    path = str(tmp_path / 'schedules.json')
    legacy = _writer([0, 1])
    with open(path, 'w', encoding='utf-8') as f:
        json.dump(legacy.to_json(), f)

    # readable as-is
    assert len(ScheduleCache.load(path)) == 2

    # a save on top migrates: disk records survive, new records land
    newcomer = _writer([2])
    newcomer.save(path)
    with open(path, 'r', encoding='utf-8') as f:
        header = json.loads(f.readline())
    assert header.get('log') == 1
    assert header.get('version') == CACHE_FORMAT_VERSION
    merged = ScheduleCache.load(path)
    assert len(merged) == 3
    assert merged.measurement_count == 3

    # compacting a legacy file migrates it too
    legacy_path = str(tmp_path / 'legacy2.json')
    with open(legacy_path, 'w', encoding='utf-8') as f:
        json.dump(legacy.to_json(), f)
    kept = compact_log(legacy_path)
    assert kept == 4                     # 2 entries + 2 measurement records
    assert len(ScheduleCache.load(legacy_path)) == 2


def test_concurrent_savers_cannot_drop_entries(tmp_path):
    """The PR-1 regression, pinned: two caches that both loaded the same
    starting state and then tuned disjoint work save concurrently; with
    merge-on-save JSON the second writer's read-modify-write clobbered the
    first, with the append-only log both survive."""
    path = str(tmp_path / 'schedules.jsonl')
    _writer([0]).save(path)
    worker_a = ScheduleCache.load(path)
    worker_b = ScheduleCache.load(path)   # both start from the same state
    _put(worker_a, 1)
    _put(worker_b, 2)
    worker_a.save(path)
    worker_b.save(path)                   # old format: would drop sig_01
    final = ScheduleCache.load(path)
    assert {s for s in SIGNATURES if s in final} == {'sig_00', 'sig_01',
                                                     'sig_02'}
    assert os.path.getsize(path) > 0
