"""ONNX-like graph serialization round-trips."""
import os
import tempfile

import numpy as np
import pytest

from repro.graph import from_numpy, ops, symbol, trace
from repro.graph.onnx_io import graph_from_dict, graph_to_dict, load_graph, save_graph

RNG = np.random.default_rng(5)


def _roundtrip(graph, *inputs):
    data = graph_to_dict(graph)
    rebuilt = graph_from_dict(data)
    a = graph.run(*inputs)
    b = rebuilt.run(*inputs)
    for x, y in zip(a, b):
        np.testing.assert_allclose(x, y, rtol=1e-6)
    return rebuilt


class TestRoundTrip:
    def test_arithmetic_chain(self):
        x = symbol([4, 4], name='x')
        w = from_numpy(RNG.standard_normal((4, 4)).astype(np.float32))
        y = ops.relu(ops.add(ops.matmul(x, w), 1.0 * from_numpy(np.float32(0.5).reshape(()))))
        _roundtrip(trace(y), RNG.standard_normal((4, 4)).astype(np.float32))

    def test_conv_pool_concat(self):
        x = symbol([1, 3, 8, 8], name='x')
        w = from_numpy(RNG.standard_normal((4, 3, 3, 3)).astype(np.float32))
        c = ops.conv2d(x, w, stride=1, padding=1)
        y = ops.concat([ops.max_pool2d(c, 2, 2), ops.avg_pool2d(c, 2, 2)], axis=1)
        _roundtrip(trace(y), RNG.standard_normal((1, 3, 8, 8)).astype(np.float32))

    def test_softmax_reduce_embedding(self):
        table = from_numpy(RNG.standard_normal((10, 8)).astype(np.float32))
        ids = symbol([4], dtype='int32', name='ids')
        y = ops.softmax(ops.embedding(table, ids))
        _roundtrip(trace(y), np.array([1, 3, 5, 7], dtype=np.int32))

    def test_transforms_and_clip(self):
        x = symbol([2, 6], name='x')
        y = ops.clip(ops.transpose(ops.reshape(x, [3, 4]), [1, 0]), -1.0, 1.0)
        _roundtrip(trace(y), RNG.standard_normal((2, 6)).astype(np.float32))

    def test_file_save_load(self):
        x = symbol([4], name='x')
        g = trace(ops.gelu(x), name='tiny')
        path = tempfile.mktemp(suffix='.json')
        try:
            save_graph(g, path)
            loaded = load_graph(path)
            assert loaded.name == 'tiny'
            xv = RNG.standard_normal(4).astype(np.float32)
            np.testing.assert_allclose(loaded.run(xv)[0], g.run(xv)[0], rtol=1e-6)
        finally:
            os.remove(path)

    def test_version_checked(self):
        x = symbol([4], name='x')
        data = graph_to_dict(trace(ops.relu(x)))
        data['format_version'] = 99
        with pytest.raises(ValueError, match='version'):
            graph_from_dict(data)

    def test_constants_preserved_bit_exact(self):
        w = from_numpy(RNG.standard_normal((16,)).astype(np.float32))
        x = symbol([16], name='x')
        g = trace(ops.mul(x, w))
        rebuilt = graph_from_dict(graph_to_dict(g))
        (const,) = [t for op in rebuilt.nodes for t in op.inputs if t.is_constant]
        assert np.array_equal(const.numpy(), w.numpy())
