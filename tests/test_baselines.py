"""Baseline systems: loop-oriented scheduling, tuners, library, frameworks."""
import math

import numpy as np
import pytest

from repro.backend.interpreter import run_kernel
from repro.baselines import (Ansor, AutoTVM, KernelLibrary, OnnxRuntimeLike,
                             PyTorchLike, TensorRTLike, divisors,
                             factor_splits_count, iter_tile_configs)
from repro.baselines.input_space import (autotvm_conv_space_size,
                                         resnet50_conv_workloads)
from repro.baselines.loop_sched import (LoopSchedule, ScheduleError,
                                        create_default_program)
from repro.graph import from_numpy, ops, symbol, trace
from repro.ir.compute import compute, reduce, tensor_input
from repro.ir.task import Task

RNG = np.random.default_rng(11)


class TestLoopScheduling:
    """Table 1: the declarative primitives."""

    def _program(self):
        a = tensor_input('A', 'float32', [128, 4])
        out = compute('B', [128, 4], lambda i, j: a[i, j] * 2.0)
        return create_default_program(Task('copy', [a], out))

    def _check_runs(self, sched, grid_block_expected=None):
        func = sched.lower()
        a = RNG.standard_normal((128, 4)).astype(np.float32)
        b = np.full((128, 4), np.nan, dtype=np.float32)
        run_kernel(func, [a, b])
        np.testing.assert_allclose(b, 2 * a)
        if grid_block_expected:
            assert (func.grid_dim, func.block_dim) == grid_block_expected

    def test_default_program_runs(self):
        self._check_runs(self._program())

    def test_split(self):
        s = self._program()
        outer, inner = s.split('i0', 32)
        assert outer.extent == 4 and inner.extent == 32
        self._check_runs(s)

    def test_split_requires_perfect_factor(self):
        s = self._program()
        with pytest.raises(ScheduleError, match='perfect tile'):
            s.split('i0', 48)

    def test_fuse_and_reorder(self):
        s = self._program()
        fused = s.fuse('i0', 'i1')
        assert fused.extent == 512
        self._check_runs(s)
        s2 = self._program()
        s2.reorder('i1', 'i0')
        assert [l.name for l in s2.loops] == ['i1', 'i0']
        self._check_runs(s2)

    def test_fuse_requires_adjacent(self):
        a = tensor_input('A', 'float32', [2, 3, 4])
        out = compute('B', [2, 3, 4], lambda i, j, k: a[i, j, k] * 2.0)
        s = create_default_program(Task('t', [a], out))
        with pytest.raises(ScheduleError, match='adjacent'):
            s.fuse('i0', 'i2')

    def test_bind_to_hardware_axes(self):
        s = self._program()
        fused = s.fuse('i0', 'i1')
        outer, inner = s.split(fused, 128)
        s.bind(outer, 'blockIdx.x')
        s.bind(inner, 'threadIdx.x')
        self._check_runs(s, ((4, 1, 1), (128, 1, 1)))

    def test_double_bind_rejected(self):
        s = self._program()
        s.bind('i0', 'threadIdx.x')
        with pytest.raises(ScheduleError, match='already bound'):
            s.bind('i1', 'threadIdx.x')

    def test_reduction_default_program(self):
        a = tensor_input('A', 'float32', [8, 16])
        out = compute('B', [8], lambda i: reduce([16], lambda k: a[i, k]))
        s = create_default_program(Task('sum', [a], out))
        func = s.lower()
        av = RNG.standard_normal((8, 16)).astype(np.float32)
        bv = np.zeros(8, dtype=np.float32)   # reduction accumulates in-place
        run_kernel(func, [av, bv])
        np.testing.assert_allclose(bv, av.sum(1), rtol=1e-4, atol=1e-5)

    def test_program_text_table1_shapes(self):
        s = self._program()
        s.split('i0', 32)
        text = s.program_text()
        assert 'for i0o in range(4):' in text and 'for i0i in range(32):' in text


class TestInputCentricSpace:
    def test_factor_splits_count(self):
        # 512 = 2^9 into 4 ordered factors: C(12, 3)
        assert factor_splits_count(512, 4) == math.comb(12, 3)
        assert factor_splits_count(7, 2) == 2
        assert factor_splits_count(1, 4) == 1

    def test_divisors(self):
        assert divisors(12) == (1, 2, 3, 4, 6, 12)
        assert divisors(13) == (1, 13)

    def test_space_size_grows_with_divisors(self):
        workloads = {str(w): autotvm_conv_space_size(w)
                     for w in resnet50_conv_workloads()}
        assert max(workloads.values()) > 1e7
        assert min(workloads.values()) > 1e4

    def test_prime_extents_have_no_valid_tiles(self):
        assert list(iter_tile_configs(2039, 2039, 2039)) == []
        assert len(list(iter_tile_configs(2048, 2048, 2048))) > 100


class TestTuners:
    def test_autotvm_weak_transformer_template(self):
        at = AutoTVM()
        space = at.candidate_space(128, 768, 768, 'dense')
        assert 0 < len(space) < 20           # paper: "less than 20 schedules"
        assert all(c.tm == 1 and c.tn == 1 for c in space)

    def test_autotvm_conv_space_is_rich(self):
        at = AutoTVM()
        assert len(at.candidate_space(196, 512, 2304, 'conv')) > 100

    def test_ansor_beats_autotvm_search(self):
        """Same space, better search: Ansor's best <= AutoTVM's best."""
        at = AutoTVM(seed=3)
        an = Ansor(seed=3)
        r_at = at.tune_contraction(784, 128, 576, kind='conv', name='t')
        r_an = an.tune_contraction(784, 128, 576, kind='conv', name='t')
        assert r_an.best_latency <= r_at.best_latency * 1.05

    def test_prime_size_fails(self):
        at = AutoTVM()
        result = at.tune_contraction(2039, 2039, 2039, kind='conv', name='prime')
        assert result.failed

    def test_task_results_cached(self):
        at = AutoTVM()
        r1 = at.tune_contraction(256, 256, 256, kind='conv', name='x')
        t = at.clock.elapsed_seconds
        r2 = at.tune_contraction(256, 256, 256, kind='conv', name='x')
        assert r1 is r2 and at.clock.elapsed_seconds == t

    def test_depthwise_quality_ordering(self):
        """Ansor's depthwise sketch > AutoTVM's template (paper Fig. 16)."""
        x = symbol([1, 32, 56, 56])
        w = from_numpy(RNG.standard_normal((32, 1, 3, 3)).astype(np.float32))
        g = trace(ops.conv2d(x, w, padding=1, groups=32))
        r_ansor = Ansor().compile(g)
        r_autotvm = AutoTVM().compile(g)
        assert r_ansor.latency < r_autotvm.latency


class TestLibraryAndFrameworks:
    def test_gemm_tile_pick_prefers_occupancy(self):
        lib = KernelLibrary()
        big = lib.pick_gemm_tile(4096, 4096, 1024)
        small = lib.pick_gemm_tile(128, 768, 768)
        assert big.bm * big.bn > small.bm * small.bn

    def test_framework_ordering_on_cnn(self):
        """ORT (fused, low overhead) < PyTorch (eager) on the same graph."""
        x = symbol([1, 16, 28, 28])
        w = from_numpy(RNG.standard_normal((32, 16, 3, 3)).astype(np.float32))
        s = from_numpy(RNG.standard_normal((32, 1, 1)).astype(np.float32))
        b = from_numpy(RNG.standard_normal((32, 1, 1)).astype(np.float32))
        g = trace(ops.relu(ops.batch_norm(ops.conv2d(x, w, padding=1), s, b)))
        pt = PyTorchLike().compile(g)
        ort = OnnxRuntimeLike().compile(g)
        assert ort.latency < pt.latency
        assert ort.num_kernels < pt.num_kernels

    def test_pytorch_views_are_free(self):
        x = symbol([4, 6])
        g = trace(ops.transpose(x, [1, 0]))
        report = PyTorchLike().compile(g)
        assert report.num_kernels == 0

    def test_tensorrt_fuses_attention(self):
        from repro.models.bert import transformer_encoder_layer
        from repro.models.common import WeightFactory
        wf = WeightFactory(5)
        x = symbol([128, 768])
        g = trace(transformer_encoder_layer(wf, x, 768, 12, 3072, name='L'))
        trt = TensorRTLike().compile(g)
        ort = OnnxRuntimeLike().compile(g)
        assert any('fused_attention' in name for name, _ in trt.kernel_latencies)
        assert trt.latency < ort.latency

    def test_report_row_formatting(self):
        x = symbol([4])
        report = PyTorchLike().compile(trace(ops.relu(x)))
        assert 'pytorch' in report.row()
