"""Smoke-run the examples so they cannot rot silently."""
import os
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def test_quickstart_example_runs():
    env = dict(os.environ)
    env['PYTHONPATH'] = (str(REPO_ROOT / 'src')
                         + os.pathsep + env.get('PYTHONPATH', ''))
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / 'examples' / 'quickstart.py')],
        capture_output=True, text=True, env=env, timeout=300)
    assert proc.returncode == 0, proc.stderr
    assert 'executed on the functional simulator: OK' in proc.stdout
    assert 'max error' in proc.stdout
