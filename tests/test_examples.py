"""Smoke-run the examples so they cannot rot silently."""
import os
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def _run_example(name: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env['PYTHONPATH'] = (str(REPO_ROOT / 'src')
                         + os.pathsep + env.get('PYTHONPATH', ''))
    return subprocess.run(
        [sys.executable, str(REPO_ROOT / 'examples' / name)],
        capture_output=True, text=True, env=env, timeout=300)


def test_quickstart_example_runs():
    proc = _run_example('quickstart.py')
    assert proc.returncode == 0, proc.stderr
    assert 'executed on the functional simulator: OK' in proc.stdout
    assert 'max error' in proc.stdout


def test_deploy_fleet_example_runs():
    """The ~20-line spec-driven fleet run must keep working end to end."""
    proc = _run_example('deploy_fleet.py')
    assert proc.returncode == 0, proc.stderr
    assert 'spec-driven fleet' in proc.stdout
    assert 'per replica' in proc.stdout
