"""IR construction: types, expressions, statements, builders, printing."""
import pytest

from repro.ir import (BinaryExpr, Constant, DataType, FunctionBuilder, IfStmt,
                      MemoryScope, TensorType, UnaryExpr, Var, boolean, cast,
                      const, convert, f16, f32, i32, if_then_else, logical_and,
                      logical_not, logical_or, max_expr, min_expr, seq_stmt,
                      stmt_repr, substitute, tensor_type, tensor_var, thread_idx,
                      var)
from repro.ir.stmt import BufferStoreStmt, SeqStmt
from repro.ir.tools import free_vars


class TestTypes:
    def test_dtype_registry(self):
        assert DataType.from_name('float32') is f32
        assert DataType.from_name('f16') is f16
        with pytest.raises(ValueError):
            DataType.from_name('float8')

    def test_dtype_cast_py(self):
        assert f32.cast_py(1) == 1.0
        assert i32.cast_py(3.7) == 3
        assert boolean.cast_py(2) is True

    def test_tensor_type(self):
        t = tensor_type('float32', [4, 8], MemoryScope.SHARED)
        assert t.num_elements == 32 and t.nbytes == 128 and t.rank == 2
        assert t.with_scope('global').scope == 'global'
        with pytest.raises(ValueError):
            TensorType('float32', [4], scope='texture')
        with pytest.raises(ValueError):
            TensorType('float32', [-1])

    def test_tensor_type_equality(self):
        assert tensor_type(f32, [2]) == tensor_type('float32', [2])
        assert tensor_type(f32, [2]) != tensor_type(f32, [2], 'shared')


class TestExpressions:
    def test_operator_overloads_build_tree(self):
        x, y = var('x'), var('y')
        e = (x + 1) * y - x // 2
        assert isinstance(e, BinaryExpr) and e.op == '-'
        assert repr(e) == '(x + 1) * y - x // 2'

    def test_comparison_and_reflection(self):
        x = var('x')
        assert repr(x < 3) == 'x < 3'
        assert repr(3 < x) == 'x < 3' or '3 < x' in repr(3 < x)
        # int <= Expr reflects into Expr.__ge__
        e = 0 <= x
        assert isinstance(e, BinaryExpr) and e.op == '<='

    def test_no_python_truth_value(self):
        x = var('x')
        with pytest.raises(TypeError):
            bool(x < 3)

    def test_convert_rejects_unknown(self):
        with pytest.raises(TypeError):
            convert('hello')

    def test_constants_cast_to_dtype(self):
        assert const(True).dtype is boolean
        assert const(2).dtype is i32
        assert const(0.5).dtype is f32

    def test_logical_builders(self):
        x = var('x')
        e = logical_and(x < 3, 0 <= x, True)
        assert repr(e).count('&&') == 2
        assert repr(logical_or(x < 1, x < 2)).count('||') == 1
        assert repr(logical_not(x < 1)) == '!(x < 1)'

    def test_min_max_if_then_else(self):
        x = var('x')
        assert repr(min_expr(x, 0)) == 'min(x, 0)'
        assert repr(max_expr(x, 0)) == 'max(x, 0)'
        assert '?' in repr(if_then_else(x < 1, 1.0, 0.0))

    def test_tensor_indexing(self):
        a = tensor_var('A', f32, [4, 4])
        assert repr(a[1, 2]) == 'A[1, 2]'
        assert repr(cast(a[0, 0], 'int32')) == 'i32(A[0, 0])'

    def test_unary_validation(self):
        with pytest.raises(ValueError):
            UnaryExpr('cosh', var('x'))
        with pytest.raises(ValueError):
            BinaryExpr('**', var('x'), var('y'))


class TestStatementsAndBuilder:
    def test_seq_stmt_flattens(self):
        a = tensor_var('A', f32, [2])
        s1 = BufferStoreStmt(a, [0], const(1.0))
        s2 = BufferStoreStmt(a, [1], const(2.0))
        nested = seq_stmt([s1, SeqStmt([s2])])
        assert isinstance(nested, SeqStmt) and len(nested.stmts) == 2
        assert seq_stmt([s1]) is s1

    def test_builder_produces_function(self):
        fb = FunctionBuilder('k', grid_dim=2, block_dim=32)
        a = fb.tensor_param('A', f32, [64])
        smem = fb.shared_tensor('buf', f32, [32])
        with fb.for_range(2, name='i') as i:
            fb.store(smem, [thread_idx()], a[i * 32 + thread_idx()])
            fb.sync()
        func = fb.finish()
        assert func.grid_dim == (2, 1, 1) and func.block_dim == (32, 1, 1)
        assert func.shared_memory_bytes() == 32 * 4
        assert 'syncthreads' in repr(func)

    def test_builder_if_otherwise(self):
        fb = FunctionBuilder('k')
        a = fb.tensor_param('A', f32, [4])
        with fb.if_then(thread_idx() < 2):
            fb.store(a, [thread_idx()], 1.0)
        with fb.otherwise():
            fb.store(a, [thread_idx()], 2.0)
        func = fb.finish()
        assert isinstance(func.body, IfStmt)
        assert func.body.else_body is not None

    def test_otherwise_requires_if(self):
        fb = FunctionBuilder('k')
        with pytest.raises(ValueError):
            with fb.otherwise():
                pass

    def test_fresh_names_unique(self):
        fb = FunctionBuilder('k')
        v1 = fb.declare_var('i')
        v2 = fb.declare_var('i')
        assert v1.name != v2.name

    def test_kernel_params_must_be_global(self):
        from repro.ir import Function
        bad = tensor_var('S', f32, [4], 'shared')
        with pytest.raises(ValueError):
            Function('k', [bad], SeqStmt(()), 1, 1)


class TestTools:
    def test_substitute(self):
        x, y = var('x'), var('y')
        e = substitute(x + x * 2, {x: y + 1})
        assert repr(e) == 'y + 1 + (y + 1) * 2'

    def test_free_vars_respects_binding(self):
        fb = FunctionBuilder('k')
        a = fb.tensor_param('A', f32, [8])
        outside = var('n')
        with fb.for_range(4, name='i') as i:
            fb.store(a, [i], convert(0.0) + outside)
        func = fb.finish()
        names = {v.name for v in free_vars(func.body)}
        assert 'n' in names and 'A' in names and 'i' not in names

    def test_stmt_repr_shows_structure(self):
        fb = FunctionBuilder('k')
        a = fb.tensor_param('A', f32, [4])
        with fb.for_range(4, name='i', unroll=True) as i:
            fb.store(a, [i], 0.0)
        text = stmt_repr(fb.finish().body)
        assert 'unrolled' in text and 'for i in range(4)' in text
