"""The Hidet pipeline end to end, plus the model zoo's structure."""
import numpy as np
import pytest

from repro.graph import from_numpy, ops, symbol, trace
from repro.models import (bert_base, gpt2, inception_v3, mobilenet_v2, resnet50)
from repro.models.bert import transformer_encoder_layer
from repro.models.common import WeightFactory
from repro.runtime import HidetExecutor, benchmark, optimize

RNG = np.random.default_rng(7)


class TestOptimizePipeline:
    def _small_cnn(self):
        x = symbol([1, 4, 12, 12], name='x')
        wf = WeightFactory(1)
        from repro.models.common import conv_bn_relu
        y = conv_bn_relu(wf, x, 8, kernel=3, padding=1, name='c1')
        y = conv_bn_relu(wf, y, 8, kernel=3, padding=1, name='c2')
        y = ops.global_avg_pool(y)
        return trace(y, name='small_cnn'), x

    def test_functional_equivalence_cnn(self):
        g, _ = self._small_cnn()
        compiled = optimize(g)
        x = RNG.standard_normal((1, 4, 12, 12)).astype(np.float32)
        np.testing.assert_allclose(compiled.run(x)[0], g.run(x)[0],
                                   rtol=1e-4, atol=1e-4)

    def test_functional_equivalence_transformer_layer(self):
        wf = WeightFactory(3)
        x = symbol([8, 16], name='x')
        y = transformer_encoder_layer(wf, x, 16, 2, 32, name='L')
        g = trace(y)
        compiled = optimize(g)
        xv = RNG.standard_normal((8, 16)).astype(np.float32)
        np.testing.assert_allclose(compiled.run(xv)[0], g.run(xv)[0],
                                   rtol=1e-3, atol=1e-4)

    def test_fusion_reduces_kernels(self):
        g, _ = self._small_cnn()
        fused = HidetExecutor(enable_fusion=True).compile(g)
        unfused = HidetExecutor(enable_fusion=False).compile(g)
        assert fused.num_kernels < unfused.num_kernels
        assert fused.latency < unfused.latency

    def test_latency_breakdown_and_summary(self):
        g, _ = self._small_cnn()
        compiled = optimize(g)
        breakdown = compiled.latency_breakdown()
        assert abs(sum(l for _, l in breakdown)
                   + compiled.num_kernels * compiled.dispatch_overhead
                   - compiled.latency) < 1e-12
        assert 'CompiledGraph' in compiled.summary()

    def test_double_buffer_toggle(self):
        g, _ = self._small_cnn()
        db = HidetExecutor(double_buffer=True).compile(g)
        sb = HidetExecutor(double_buffer=False).compile(g)
        assert db.latency < sb.latency

    def test_benchmark_helper(self):
        g, _ = self._small_cnn()
        compiled = optimize(g)
        exact = benchmark(compiled)
        assert exact.std_ms == 0.0
        noisy = benchmark(compiled, noise=0.02, repeats=20, seed=1)
        assert noisy.std_ms > 0
        assert abs(noisy.mean_ms - exact.mean_ms) / exact.mean_ms < 0.05

    def test_tuning_cache_shared_within_executor(self):
        """Identical conv shapes tune once (simulated clock counts tasks)."""
        from repro.runtime import ScheduleCache
        x = symbol([1, 8, 8, 8], name='x')
        w1 = from_numpy(RNG.standard_normal((8, 8, 3, 3)).astype(np.float32))
        w2 = from_numpy(RNG.standard_normal((8, 8, 3, 3)).astype(np.float32))
        y = ops.conv2d(ops.conv2d(x, w1, padding=1), w2, padding=1)
        # a private cache isolates the clock accounting from compiles that
        # warmed the process-wide cache earlier in the test session
        executor = HidetExecutor(cache=ScheduleCache())
        executor.compile(trace(y))
        labels = {label for label, _ in executor.clock.events}
        compile_labels = [l for l in labels if l.startswith('compile matmul')]
        assert len(compile_labels) == 1     # one unique GEMM task


class TestModelZoo:
    def test_resnet50_structure(self):
        g = resnet50()
        hist = g.operator_histogram()
        assert hist['conv2d'] == 53
        assert g.outputs[0].shape == (1, 1000)

    def test_resnet50_batch(self):
        g = resnet50(batch_size=4)
        assert g.inputs[0].shape == (4, 3, 224, 224)
        assert g.outputs[0].shape == (4, 1000)

    def test_inception_v3_structure(self):
        g = inception_v3()
        hist = g.operator_histogram()
        assert hist['conv2d'] == 94          # torchvision inception_v3 conv count
        assert g.outputs[0].shape == (1, 1000)

    def test_mobilenet_v2_structure(self):
        g = mobilenet_v2()
        convs = [op for op in g.nodes if op.name == 'conv2d']
        depthwise = [op for op in convs if op.attrs['groups'] > 1]
        assert len(convs) == 52
        assert len(depthwise) == 17
        assert g.outputs[0].shape == (1, 1000)

    def test_bert_structure(self):
        g = bert_base(seq_length=128)
        assert g.outputs[0].shape == (128, 768)
        hist = g.operator_histogram()
        assert hist['matmul'] == 12 * 6      # q,k,v,o,ffn1,ffn2 per layer
        assert hist['batch_matmul'] == 24

    def test_gpt2_structure(self):
        g = gpt2(seq_length=128)
        assert g.outputs[0].shape == (128, 50257)
        assert g.operator_histogram()['batch_matmul'] == 24

    def test_tiny_models_run_functionally(self):
        g = resnet50(image_size=32)
        out = g.run(RNG.standard_normal((1, 3, 32, 32)).astype(np.float32))[0]
        assert out.shape == (1, 1000) and np.isfinite(out).all()
        gm = mobilenet_v2(image_size=32)
        out = gm.run(RNG.standard_normal((1, 3, 32, 32)).astype(np.float32))[0]
        assert out.shape == (1, 1000) and np.isfinite(out).all()

    def test_bert_tiny_run(self):
        g = bert_base(seq_length=8, hidden=16, layers=1, heads=2, vocab_size=50)
        ids = np.arange(8, dtype=np.int32)
        out = g.run(ids)[0]
        assert out.shape == (8, 16) and np.isfinite(out).all()
