"""The functional executor: thread-block semantics, barriers, predication."""
import numpy as np
import pytest

from repro.backend.interpreter import InterpreterError, KernelInterpreter, run_kernel
from repro.ir import (FunctionBuilder, block_idx, f32, if_then_else, thread_idx)
from repro.ir.primitives import atomic_add, fma


class TestBasicExecution:
    def test_elementwise_kernel(self):
        fb = FunctionBuilder('scale', grid_dim=2, block_dim=4)
        a = fb.tensor_param('A', f32, [8])
        b = fb.tensor_param('B', f32, [8])
        i = block_idx() * 4 + thread_idx()
        fb.store(b, [i], a[i] * 2.0)
        a_np = np.arange(8, dtype=np.float32)
        b_np = np.full(8, np.nan, dtype=np.float32)
        run_kernel(fb.finish(), [a_np, b_np])
        assert np.allclose(b_np, a_np * 2)

    def test_scalar_arguments(self):
        fb = FunctionBuilder('addc', grid_dim=1, block_dim=4)
        a = fb.tensor_param('A', f32, [4])
        c = fb.scalar_param('c', 'float32')
        fb.store(a, [thread_idx()], a[thread_idx()] + c)
        a_np = np.zeros(4, dtype=np.float32)
        run_kernel(fb.finish(), [a_np, 2.5])
        assert np.allclose(a_np, 2.5)

    def test_shape_mismatch_rejected(self):
        fb = FunctionBuilder('k', block_dim=1)
        a = fb.tensor_param('A', f32, [4])
        fb.store(a, [0], 0.0)
        with pytest.raises(InterpreterError, match='shape'):
            run_kernel(fb.finish(), [np.zeros(5, dtype=np.float32)])

    def test_wrong_arity_rejected(self):
        fb = FunctionBuilder('k', block_dim=1)
        fb.tensor_param('A', f32, [1])
        fb.store(fb.params[0], [0], 0.0)
        with pytest.raises(InterpreterError, match='arguments'):
            run_kernel(fb.finish(), [])

    def test_grid_limit(self):
        fb = FunctionBuilder('k', grid_dim=10_000, block_dim=1)
        a = fb.tensor_param('A', f32, [1])
        fb.store(a, [0], 1.0)
        with pytest.raises(InterpreterError, match='exceeds interpreter limit'):
            run_kernel(fb.finish(), [np.zeros(1, dtype=np.float32)], max_blocks=100)


class TestBarrierSemantics:
    def test_cross_thread_communication_through_smem(self):
        """Thread t reads what thread (t+1)%n wrote — only valid with a barrier."""
        n = 8
        fb = FunctionBuilder('rotate', grid_dim=1, block_dim=n)
        a = fb.tensor_param('A', f32, [n])
        b = fb.tensor_param('B', f32, [n])
        smem = fb.shared_tensor('buf', f32, [n])
        t = thread_idx()
        fb.store(smem, [t], a[t])
        fb.sync()
        fb.store(b, [t], smem[(t + 1) % n])
        a_np = np.arange(n, dtype=np.float32)
        b_np = np.full(n, np.nan, dtype=np.float32)
        run_kernel(fb.finish(), [a_np, b_np])
        assert np.allclose(b_np, np.roll(a_np, -1))

    def test_double_buffer_style_pipeline(self):
        """Two smem buffers alternate across barriered iterations."""
        n, iters = 4, 6
        fb = FunctionBuilder('pipeline', grid_dim=1, block_dim=n)
        a = fb.tensor_param('A', f32, [iters, n])
        out = fb.tensor_param('out', f32, [iters, n])
        smem = fb.shared_tensor('buf', f32, [2, n])
        t = thread_idx()
        fb.store(smem, [0, t], a[0, t])
        fb.sync()
        with fb.for_range(iters - 1, name='k') as k:
            # consume buffer k%2 written in the previous step, shifted by one
            fb.store(out, [k, t], smem[k % 2, (t + 1) % n])
            fb.store(smem, [(k + 1) % 2, t], a[k + 1, t])
            fb.sync()
        fb.store(out, [iters - 1, t], smem[(iters - 1) % 2, (t + 1) % n])
        a_np = np.arange(iters * n, dtype=np.float32).reshape(iters, n)
        out_np = np.full((iters, n), np.nan, dtype=np.float32)
        run_kernel(fb.finish(), [a_np, out_np])
        assert np.allclose(out_np, np.roll(a_np, -1, axis=1))

    def test_barrier_divergence_detected(self):
        fb = FunctionBuilder('bad', grid_dim=1, block_dim=4)
        a = fb.tensor_param('A', f32, [4])
        with fb.for_range(1, name='dummy'):
            pass
        # hand-construct divergence: threads 0..1 sync, 2..3 do not
        from repro.ir.stmt import BarrierStmt, IfStmt
        fb.append(IfStmt(thread_idx() < 2, BarrierStmt()))
        fb.store(a, [thread_idx()], 0.0)
        with pytest.raises(InterpreterError, match='barrier divergence'):
            run_kernel(fb.finish(), [np.zeros(4, dtype=np.float32)])

    def test_uninitialized_shared_reads_are_nan(self):
        fb = FunctionBuilder('oops', grid_dim=1, block_dim=1)
        out = fb.tensor_param('out', f32, [1])
        smem = fb.shared_tensor('buf', f32, [4])
        fb.store(out, [0], smem[2])
        out_np = np.zeros(1, dtype=np.float32)
        run_kernel(fb.finish(), [out_np])
        assert np.isnan(out_np[0])


class TestPredicationAndPrimitives:
    def test_lazy_select_guards_out_of_bounds(self):
        """if_then_else must not evaluate the untaken branch (like hardware)."""
        fb = FunctionBuilder('guarded', grid_dim=1, block_dim=8)
        a = fb.tensor_param('A', f32, [5])
        b = fb.tensor_param('B', f32, [8])
        t = thread_idx()
        fb.store(b, [t], if_then_else(t < 5, a[t], 0.0))
        a_np = np.arange(5, dtype=np.float32)
        b_np = np.full(8, np.nan, dtype=np.float32)
        run_kernel(fb.finish(), [a_np, b_np])   # would IndexError if eager
        assert np.allclose(b_np, np.concatenate([a_np, np.zeros(3)]))

    def test_short_circuit_logical_and(self):
        fb = FunctionBuilder('sc', grid_dim=1, block_dim=4)
        a = fb.tensor_param('A', f32, [2])
        b = fb.tensor_param('B', f32, [4])
        from repro.ir import logical_and
        t = thread_idx()
        cond = logical_and(t < 2, a[t] > 0.0)   # a[t] must not evaluate for t >= 2
        fb.store(b, [t], if_then_else(cond, 1.0, 0.0))
        run_kernel(fb.finish(), [np.ones(2, dtype=np.float32),
                                 np.zeros(4, dtype=np.float32)])

    def test_atomic_add(self):
        fb = FunctionBuilder('atomic', grid_dim=4, block_dim=32)
        acc = fb.tensor_param('acc', f32, [1])
        fb.evaluate(atomic_add(acc, [0], 1.0))
        acc_np = np.zeros(1, dtype=np.float32)
        run_kernel(fb.finish(), [acc_np])
        assert acc_np[0] == 128.0

    def test_fma_primitive(self):
        fb = FunctionBuilder('fma', grid_dim=1, block_dim=1)
        out = fb.tensor_param('out', f32, [1])
        fb.store(out, [0], fma(2.0, 3.0, 4.0))
        out_np = np.zeros(1, dtype=np.float32)
        run_kernel(fb.finish(), [out_np])
        assert out_np[0] == 10.0

    def test_registers_are_thread_private(self):
        fb = FunctionBuilder('private', grid_dim=1, block_dim=4)
        out = fb.tensor_param('out', f32, [4])
        regs = fb.register_tensor('r', f32, [1])
        t = thread_idx()
        fb.store(regs, [0], 1.0 * t)
        fb.sync()
        fb.store(out, [t], regs[0])
        out_np = np.full(4, np.nan, dtype=np.float32)
        run_kernel(fb.finish(), [out_np])
        assert np.allclose(out_np, [0, 1, 2, 3])
