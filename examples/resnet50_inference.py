"""Compile and run ResNet-50 with the Hidet pipeline (paper §6.2 workload).

Shows the full flow: build the graph, compile (graph optimizations +
hardware-centric tuning + post-scheduling fusion), inspect the fused kernels,
estimate latency against the baseline executors, and verify functional
equivalence on a reduced image size.

Run:  python examples/resnet50_inference.py
"""
import numpy as np

from repro.baselines import OnnxRuntimeLike, PyTorchLike
from repro.models import resnet50
from repro.runtime import benchmark, optimize


def main():
    print('building ResNet-50 (batch 1, 224x224)...')
    graph = resnet50()
    print(f'  {graph.num_operators} operators, '
          f'{graph.operator_histogram()["conv2d"]} convolutions')

    print('compiling with the Hidet pipeline...')
    compiled = optimize(graph)
    print(f'  fused into {len(compiled.ops)} operators / {compiled.num_kernels} kernels')
    print(f'  simulated tuning time: {compiled.tuning_seconds / 60:.1f} minutes '
          f'(paper: ~20 minutes)')
    print(f'  estimated latency: {benchmark(compiled)} (paper: 1.33 ms)')

    print('\nslowest fused kernels:')
    for name, latency in compiled.latency_breakdown()[:5]:
        print(f'  {name:55s} {latency * 1e6:8.1f} us')

    print('\nbaseline executors on the same graph:')
    for executor in (PyTorchLike(), OnnxRuntimeLike()):
        report = executor.compile(graph)
        print(f'  {report.executor:14s} {report.latency_ms:7.3f} ms '
              f'({report.num_kernels} kernels)')

    print('\nfunctional check on a 64x64 ResNet-50 (compiled vs reference)...')
    small = resnet50(image_size=64)
    compiled_small = optimize(small)
    x = np.random.default_rng(0).standard_normal((1, 3, 64, 64)).astype(np.float32)
    reference = small.run(x)[0]
    got = compiled_small.run(x)[0]
    print(f'  max |difference| = {np.abs(reference - got).max():.2e}')


if __name__ == '__main__':
    main()
