"""Define a new operator from its computation and get fusion for free (§5.2).

The paper's pitch: developers write *one* computation definition; rule-based
scheduling generates the kernel, and post-scheduling fusion folds injective
neighbours in.  Here we build the paper's Figure 15 pipeline —
``Mul(2.0) -> Reverse -> Mul(3.0) -> Reshape(2, 50)`` — let the compiler fuse
it into a single kernel, and print the generated CUDA, which matches the
fused program in the figure.

Run:  python examples/custom_operator_fusion.py
"""
import numpy as np

from repro.backend.codegen import generate_cuda_module
from repro.graph import Tensor, ops, symbol, trace
from repro.graph.operator import Operator
from repro.ir.compute import compute, tensor_input
from repro.ir.task import Task
from repro.runtime import HidetExecutor


class ReverseOp(Operator):
    """out[i] = x[n-1-i] — a custom injective operator in ~10 lines."""

    def __init__(self, x: Tensor):
        super().__init__([x], name='reverse')

    def infer_output(self):
        return self.inputs[0].shape, self.inputs[0].dtype

    def make_task(self) -> Task:
        x = self.inputs[0]
        n = x.shape[0]
        tx = tensor_input(x.name, x.dtype, x.shape)
        out = compute('reversed', [n], lambda i: tx[n - 1 - i])
        return Task(self.name, [tx], out)

    def run_numpy(self, x: np.ndarray) -> np.ndarray:
        return x[::-1].copy()


def main():
    n = 100
    c = symbol([n], name='C')
    reversed_ = ReverseOp(c * 2.0).output          # prologue: Mul(2.0)
    d = ops.reshape(reversed_ * 3.0, [2, 50])      # epilogues: Mul(3.0), Reshape
    graph = trace(d, name='figure15')
    print(graph)

    executor = HidetExecutor(build_ir=True)
    compiled = executor.compile(graph)
    print(f'\nfused into {len(compiled.ops)} kernel(s) '
          f'(the whole pipeline is one kernel)')

    print('\n--- generated CUDA (compare with paper Figure 15) ---')
    print(generate_cuda_module(compiled.ops[0].module))

    x = np.arange(n, dtype=np.float32)
    got = compiled.run(x)[0]
    expected = ((x * 2.0)[::-1] * 3.0).reshape(2, 50)
    assert np.allclose(got, expected)
    print('functional check: OK')


if __name__ == '__main__':
    main()
