"""A fleet deployment as data: spec in, serving report out.

The whole registry → batcher → fleet → placement stack is described by one
JSON-round-trippable ``DeploymentSpec`` and stood up by the ``Deployment``
façade — no constructor wiring (see docs/deployment.md).

Run:  python examples/deploy_fleet.py
"""
from repro.serve import (BatchingSpec, Deployment, DeploymentSpec, ModelSpec,
                         PlacementSpec, ReplicaGroupSpec, poisson_trace)

TINY = {'layers': 1, 'seq_length': 16, 'vocab_size': 500}   # runs in seconds


def main():
    spec = DeploymentSpec(
        models=(ModelSpec('bert', buckets=(1, 2),
                          config={**TINY, 'hidden': 32, 'heads': 2}),
                ModelSpec('gpt2', buckets=(1, 2),
                          config={**TINY, 'hidden': 48, 'heads': 4})),
        replicas=(ReplicaGroupSpec('RTX3090', count=2),),
        batching=BatchingSpec(max_batch=2, max_wait=1e-3, max_queue=64),
        placement=PlacementSpec('model_affine'))
    assert DeploymentSpec.from_json(spec.to_json()) == spec   # it is data

    deployment = Deployment(spec)
    deployment.run(poisson_trace(qps=5000, num_requests=400,
                                 models=['bert', 'gpt2'], seed=0))
    print(deployment.report('spec-driven fleet'))


if __name__ == '__main__':
    main()
