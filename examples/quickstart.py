"""Quickstart: the task-mapping programming paradigm in five minutes.

Reproduces the paper's Figure 8 — a cooperative load written with task
mappings — then a full tiled matmul kernel, lowered, executed, and emitted
as CUDA C.

Run:  python examples/quickstart.py
"""
import numpy as np

from repro import repeat, spatial
from repro.backend.codegen import generate_cuda
from repro.backend.interpreter import run_kernel
from repro.core.schedule import MatmulSchedule
from repro.ir import FunctionBuilder, f32, thread_idx
from repro.ir.passes import lower_task_mappings, simplify
from repro.sched.matmul_template import build_matmul_module


def figure8_cooperative_load():
    """512 loading tasks assigned to 128 threads, 4 tasks per thread."""
    task_map = repeat(4, 1) * spatial(16, 8)
    print('task mapping :', task_map)
    print('task shape   :', task_map.task_shape, '  workers:', task_map.num_workers)
    print('tasks of w=9 :', task_map(9))

    fb = FunctionBuilder('cooperative_load_A', grid_dim=1, block_dim=128)
    a = fb.tensor_param('A', f32, [64, 8])
    out = fb.tensor_param('SmemA', f32, [64, 8])
    with fb.for_task(task_map, worker=thread_idx(), names=('i', 'k')) as (i, k):
        fb.store(out, [i, k], a[i, k])
    func = fb.finish()

    print('\n--- tensor program (task-mapping form) ---')
    print(func)
    print('\n--- after lowering (paper Figure 8, bottom left) ---')
    print(simplify(lower_task_mappings(func)))

    a_np = np.arange(512, dtype=np.float32).reshape(64, 8)
    out_np = np.full((64, 8), np.nan, dtype=np.float32)
    run_kernel(func, [a_np, out_np])
    assert np.array_equal(a_np, out_np)
    print('\nexecuted on the functional simulator: OK')


def double_buffered_matmul():
    """The paper's flagship kernel: tiled matmul with double buffering."""
    m = n = k = 35   # deliberately awkward: predicated loads handle the tails
    sched = MatmulSchedule(block_warps=(1, 1), warp_outer=(1, 1),
                           thread_layout=(4, 8), thread_tile=(4, 4),
                           block_k=8, double_buffer=True)
    module = build_matmul_module(m, n, k, sched)

    rng = np.random.default_rng(0)
    a = rng.standard_normal((m, k), dtype=np.float32)
    b = rng.standard_normal((k, n), dtype=np.float32)
    c = np.full((m, n), np.nan, dtype=np.float32)
    run_kernel(module[0], [a, b, c])
    print(f'\nmatmul {m}x{n}x{k} with schedule {sched.short_repr()}: '
          f'max error = {np.abs(c - a @ b).max():.2e}')

    print('\n--- generated CUDA (double-buffered pipeline, Figure 5) ---')
    print(generate_cuda(module[0]))


if __name__ == '__main__':
    figure8_cooperative_load()
    double_buffered_matmul()
