"""Compile Bert-base (seq 128) and compare executors (paper Figures 16/22).

Highlights the transformer-specific behaviours the paper reports: AutoTVM's
weak dense/batch-matmul templates, Ansor's competitive schedules, and
TensorRT's fused attention.

Run:  python examples/bert_inference.py
"""
import numpy as np

from repro.baselines import Ansor, AutoTVM, OnnxRuntimeLike, TensorRTLike
from repro.models import bert_base
from repro.runtime import optimize


def main():
    print('building Bert-base (12 layers, hidden 768, seq 128)...')
    graph = bert_base(seq_length=128)
    print(f'  {graph.num_operators} operators')

    print('\ncompiling with Hidet...')
    compiled = optimize(graph)
    print(f'  latency {compiled.latency_ms:.3f} ms, tuning '
          f'{compiled.tuning_seconds / 60:.1f} min (paper: 2.46 ms, ~5 min)')

    print('\nbaselines:')
    for executor in (OnnxRuntimeLike(), AutoTVM(), Ansor(), TensorRTLike()):
        report = executor.compile(graph)
        tuning = f', tuned {report.tuning_hours * 60:.0f} min' if report.tuning_seconds else ''
        print(f'  {report.executor:14s} {report.latency_ms:7.3f} ms{tuning}')
    print('\n(paper: AutoTVM degrades badly on transformers; TensorRT wins via '
          'fused attention; Hidet beats ORT/Ansor)')

    print('\nfunctional check on a tiny Bert (1 layer, hidden 32)...')
    tiny = bert_base(seq_length=16, hidden=32, layers=1, heads=4, vocab_size=100)
    compiled_tiny = optimize(tiny)
    ids = np.arange(16, dtype=np.int32) % 100
    reference = tiny.run(ids)[0]
    got = compiled_tiny.run(ids)[0]
    print(f'  max |difference| = {np.abs(reference - got).max():.2e}')


if __name__ == '__main__':
    main()
