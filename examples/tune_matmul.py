"""Hardware-centric tuning of matrix multiplication (paper §4.3, Figure 19).

Enumerates the full ~165-schedule space for several problem sizes — including
the prime 2039 on which AutoTVM and Ansor cannot even construct a schedule —
and prints what the tuner picked and why.

Run:  python examples/tune_matmul.py
"""
from repro.baselines import AutoTVM
from repro.core.tuning import MatmulTuner
from repro.gpusim import RTX3090


def main():
    tuner = MatmulTuner(RTX3090)
    print(f'{"size":>18s} {"best schedule":>28s} {"latency":>10s} {"candidates":>11s}')
    for (m, n, k) in [(1024, 1024, 1024), (2048, 2048, 2048),
                      (2039, 2039, 2039),             # prime (Figure 19)
                      (128, 3072, 768),               # transformer FFN
                      (196, 512, 4608)]:              # conv as implicit GEMM
        result = tuner.tune(m, n, k)
        print(f'{m:>6d}x{n:<5d}x{k:<5d} {result.best_schedule.short_repr():>28s} '
              f'{result.best_latency * 1e6:8.1f}us {result.num_candidates:11d}')
    print(f'\ntotal simulated tuning time: {tuner.clock.elapsed_seconds / 60:.1f} '
          f'minutes (paper: matmul tunes "within one minute" per shape)')

    print('\nAutoTVM on the prime size 2039:')
    report = AutoTVM().tune_contraction(2039, 2039, 2039, kind='conv', name='prime')
    print(f'  valid schedules found: {report.num_measured} -> '
          f'{"FAILED" if report.failed else "ok"} (paper: fails)')


if __name__ == '__main__':
    main()
